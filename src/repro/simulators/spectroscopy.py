"""Spectroscopy simulator: the second science domain from the paper's introduction.

The introduction motivates the technique with two examples: the LHC use case
and "using a spectroscopy simulator we can determine the elemental matter
composition and dispersions within the simulator explaining an observed
spectrum".  This module provides that second forward model:

* each element in a small periodic-table excerpt has known emission-line
  positions and relative intensities,
* the latent state is the elemental composition (fractions), a common line
  broadening (dispersion), and a smooth background level,
* the observed spectrum is the composition-weighted sum of broadened line
  templates plus background, with Gaussian readout noise.

Inference then inverts an observed spectrum into a posterior over
composition and dispersion — the same outputs→inputs inversion as the LHC
case, exercising the identical PPL machinery on a different observation
modality (1D spectra instead of 3D voxels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import Normal, Uniform
from repro.ppl.model import Model
from repro.simulators.handle import LocalHandle, SimulatorHandle

__all__ = ["ElementLine", "SpectroscopyConfig", "spectroscopy_program", "SpectroscopyModel"]


@dataclass(frozen=True)
class ElementLine:
    """An emission line: position (in detector channels, normalised) and intensity."""

    position: float
    intensity: float


#: Emission-line tables for a small set of elements (positions on a [0, 1] axis).
ELEMENT_LINES: Dict[str, Tuple[ElementLine, ...]] = {
    "Fe": (ElementLine(0.22, 1.0), ElementLine(0.47, 0.45), ElementLine(0.81, 0.2)),
    "Ni": (ElementLine(0.30, 1.0), ElementLine(0.58, 0.6)),
    "Cr": (ElementLine(0.15, 0.8), ElementLine(0.66, 1.0)),
    "Si": (ElementLine(0.09, 1.0),),
}


@dataclass(frozen=True)
class SpectroscopyConfig:
    """Observation grid and priors for the spectroscopy model."""

    elements: Tuple[str, ...] = ("Fe", "Ni", "Cr", "Si")
    num_channels: int = 64
    dispersion_range: Tuple[float, float] = (0.005, 0.05)
    background_range: Tuple[float, float] = (0.0, 0.2)
    noise_sigma: float = 0.02


def _line_template(position: float, dispersion: float, axis: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * ((axis - position) / dispersion) ** 2)


def spectroscopy_program(
    handle: SimulatorHandle,
    config: Optional[SpectroscopyConfig] = None,
    rng: Optional[RandomState] = None,
) -> Dict[str, Any]:
    """One simulated spectrum; returns composition, dispersion and the spectrum."""
    config = config or SpectroscopyConfig()
    rng = rng or get_rng()
    axis = np.linspace(0.0, 1.0, config.num_channels)

    # Composition fractions via independent uniform draws, normalised to sum to 1
    # (a stick-free parameterisation that keeps every latent's prior simple).
    raw = [
        float(handle.sample(Uniform(0.05, 1.0), name=f"abundance_{element}"))
        for element in config.elements
    ]
    total = sum(raw)
    fractions = [value / total for value in raw]

    dispersion = float(handle.sample(Uniform(*config.dispersion_range), name="dispersion"))
    background = float(handle.sample(Uniform(*config.background_range), name="background"))

    spectrum = np.full(config.num_channels, background, dtype=float)
    for element, fraction in zip(config.elements, fractions):
        for line in ELEMENT_LINES[element]:
            spectrum += fraction * line.intensity * _line_template(line.position, dispersion, axis)

    simulated = spectrum + rng.normal(0.0, config.noise_sigma, size=spectrum.shape)
    observed = handle.observe(
        Normal(spectrum, config.noise_sigma), value=simulated, name="spectrum"
    )

    return {
        "fractions": dict(zip(config.elements, fractions)),
        "dispersion": dispersion,
        "background": background,
        "expected_spectrum": spectrum,
        "observed_spectrum": np.asarray(observed),
    }


class SpectroscopyModel(Model):
    """The spectroscopy forward model as a local PPL model."""

    def __init__(self, config: Optional[SpectroscopyConfig] = None) -> None:
        super().__init__(name="spectroscopy")
        self.config = config or SpectroscopyConfig()

    def forward(self) -> Dict[str, Any]:
        return spectroscopy_program(LocalHandle(), self.config)

    @property
    def num_channels(self) -> int:
        return self.config.num_channels
