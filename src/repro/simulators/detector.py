"""Fast 3D detector (calorimeter) simulator.

The paper couples Sherpa to a "fast 3D detector simulator" producing a
20x35x35 voxel observation; the detector likelihood originally used a general
multivariate-normal PDF (via xtensor) that was replaced with a scalar 3D
implementation for a 13x speed-up.  This module reproduces that component:

* every visible final-state particle produces an energy deposit: a
  longitudinal shower profile along the depth axis and a transverse Gaussian
  spread around its impact point,
* the per-particle smearing of the impact point uses
  :class:`repro.distributions.MultivariateNormal` — both the general and the
  scalar-3D code paths are available and compared in the ablation bench,
* the summed deposition grid is the mean of the observation model; per-voxel
  Gaussian noise gives the likelihood used by ``observe``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import MultivariateNormal

__all__ = ["DetectorConfig", "Deposit", "Detector3D"]


@dataclass(frozen=True)
class DetectorConfig:
    """Geometry and response parameters of the voxel calorimeter."""

    shape: Tuple[int, int, int] = (8, 11, 11)     # (depth, x, y); paper uses (20, 35, 35)
    transverse_size: float = 3.0                   # detector half-width in "impact" units
    energy_scale: float = 1.0                      # GeV per deposited unit
    noise_sigma: float = 0.2                       # per-voxel Gaussian noise (GeV)
    shower_depth_scale: float = 0.35               # fraction of depth per unit log-energy
    transverse_spread: float = 0.9                 # Gaussian blob width in voxel units
    impact_smearing: float = 0.05                  # MVN smearing of the impact point

    @classmethod
    def paper_size(cls) -> "DetectorConfig":
        """The paper's 20x35x35 voxel configuration."""
        return cls(shape=(20, 35, 35))


@dataclass
class Deposit:
    """One particle's contribution to the calorimeter image."""

    energy: float
    impact_x: float
    impact_y: float
    is_electromagnetic: bool = False


class Detector3D:
    """Deterministic deposition + stochastic smearing of particle energies."""

    def __init__(self, config: Optional[DetectorConfig] = None, use_scalar_mvn: bool = True) -> None:
        self.config = config or DetectorConfig()
        self.use_scalar_mvn = use_scalar_mvn
        depth, height, width = self.config.shape
        self._depth_axis = np.arange(depth, dtype=float)
        self._x_axis = np.linspace(-self.config.transverse_size, self.config.transverse_size, height)
        self._y_axis = np.linspace(-self.config.transverse_size, self.config.transverse_size, width)

    # ------------------------------------------------------------------ response
    def smear_impact(self, impact: Sequence[float], rng: Optional[RandomState] = None) -> np.ndarray:
        """Smear a 3D impact vector (x, y, energy-fluctuation) with an MVN.

        This is the call site of the multivariate-normal PDF that the paper
        optimised; the distribution object exposes both the general and the
        scalar-3D log-density for the ablation benchmark.
        """
        sigma = self.config.impact_smearing
        mvn = MultivariateNormal(list(impact), [sigma**2, sigma**2, (sigma * 0.5) ** 2])
        return np.asarray(mvn.sample(rng or get_rng()), dtype=float)

    def impact_log_prob(self, impact: Sequence[float], smeared: Sequence[float]) -> float:
        """Log density of a smeared impact (scalar-3D path if enabled)."""
        sigma = self.config.impact_smearing
        mvn = MultivariateNormal(list(impact), [sigma**2, sigma**2, (sigma * 0.5) ** 2])
        if self.use_scalar_mvn:
            return float(mvn.log_prob_3d_scalar(np.asarray(smeared, dtype=float)))
        return float(mvn.log_prob(np.asarray(smeared, dtype=float)))

    def _longitudinal_profile(self, energy: float, electromagnetic: bool) -> np.ndarray:
        """Energy fraction deposited per depth layer (simplified shower profile)."""
        depth = self.config.shape[0]
        # Shower maximum scales with log(E); EM showers are shorter.
        log_energy = np.log(max(energy, 1e-3) + 1.0)
        peak = (0.25 if electromagnetic else 0.45) * depth + self.config.shower_depth_scale * log_energy
        width = (0.15 if electromagnetic else 0.25) * depth + 0.5
        profile = np.exp(-0.5 * ((self._depth_axis - peak) / width) ** 2)
        total = profile.sum()
        return profile / total if total > 0 else np.full(depth, 1.0 / depth)

    def _transverse_profile(self, impact_x: float, impact_y: float) -> np.ndarray:
        """2D Gaussian blob centred on the impact point (in detector units)."""
        spread = self.config.transverse_spread * (
            2.0 * self.config.transverse_size / max(self.config.shape[1], 1)
        )
        gx = np.exp(-0.5 * ((self._x_axis - impact_x) / spread) ** 2)
        gy = np.exp(-0.5 * ((self._y_axis - impact_y) / spread) ** 2)
        blob = np.outer(gx, gy)
        total = blob.sum()
        return blob / total if total > 0 else np.full(blob.shape, 1.0 / blob.size)

    def deposit(self, deposits: Sequence[Deposit]) -> np.ndarray:
        """Expected (noise-free) calorimeter image for a set of deposits."""
        grid = np.zeros(self.config.shape, dtype=float)
        for dep in deposits:
            if dep.energy <= 0:
                continue
            longitudinal = self._longitudinal_profile(dep.energy, dep.is_electromagnetic)
            transverse = self._transverse_profile(dep.impact_x, dep.impact_y)
            grid += dep.energy * self.config.energy_scale * longitudinal[:, None, None] * transverse[None, :, :]
        return grid

    def observe_noisy(self, expected: np.ndarray, rng: Optional[RandomState] = None) -> np.ndarray:
        """Add per-voxel Gaussian readout noise to an expected image."""
        rng = rng or get_rng()
        return expected + rng.normal(0.0, self.config.noise_sigma, size=expected.shape)
