"""The simulator-side handle abstraction.

The same generative program should be runnable in two deployments, exactly as
in the paper:

* **in-process**, traced directly by the PPL (the convenient path for
  development and tests), and
* **in a separate process**, coupled to the PPL only through PPX messages
  (the Sherpa-like production path).

To make that possible without duplicating simulator code, every simulator in
:mod:`repro.simulators` is written against a small *handle* interface with
``sample`` and ``observe`` methods.  :class:`LocalHandle` implements it with
the in-process tracing primitives; :class:`repro.ppx.client.SimulatorClient`
implements the same interface over the protocol.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from repro import ppl
from repro.distributions import Distribution

__all__ = ["SimulatorHandle", "LocalHandle"]


class SimulatorHandle(Protocol):
    """Structural interface shared by LocalHandle and SimulatorClient."""

    def sample(
        self,
        distribution: Distribution,
        name: Optional[str] = None,
        address: Optional[str] = None,
        control: bool = True,
        replace: bool = False,
    ) -> Any:
        ...

    def observe(
        self,
        distribution: Distribution,
        value: Any = None,
        name: Optional[str] = None,
        address: Optional[str] = None,
    ) -> Any:
        ...


class LocalHandle:
    """Routes sample/observe calls to the in-process PPL tracing context."""

    def sample(self, distribution, name=None, address=None, control=True, replace=False):
        return ppl.sample(distribution, name=name, address=address, control=control)

    def observe(self, distribution, value=None, name=None, address=None):
        return ppl.observe(distribution, value=value, name=name, address=address)
