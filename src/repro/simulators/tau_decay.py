"""Mini-Sherpa: tau-lepton production and decay as a probabilistic program.

This is the reproduction's stand-in for the Sherpa event generator coupled to
the fast 3D detector simulator (Section 5.4).  The probabilistic structure
mirrors the properties of the real setup that the Etalumis system is built
around:

* a categorical decay-channel choice over the tau decay table,
* continuous kinematic latents (tau momentum components px, py, pz),
* a **rejection-sampling loop** in the decay kinematics, so the number of
  random draws per execution is unbounded and the model exhibits many trace
  types (the paper notes ~25k latent variables and an unlimited number of
  random variables for this reason),
* a 3D voxel detector observation conditioned with a per-voxel Gaussian
  likelihood.

The latent variables of physics interest match Figure 8: the tau momentum
(px, py, pz), the decay channel, the energies of the two highest-energy
final-state particles (FSP energy 1/2) and the missing transverse energy
(MET).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import RandomState, get_rng
from repro.distributions import Categorical, Normal, Uniform
from repro.ppl.model import Model
from repro.simulators.channels import DECAY_CHANNELS, TAU_MASS, branching_ratios
from repro.simulators.detector import Deposit, Detector3D, DetectorConfig
from repro.simulators.handle import LocalHandle, SimulatorHandle

__all__ = ["TauDecayConfig", "tau_decay_program", "TauDecayModel", "ground_truth_event"]


@dataclass(frozen=True)
class TauDecayConfig:
    """Priors and detector settings of the mini-Sherpa model."""

    px_range: Tuple[float, float] = (-3.0, 3.0)
    py_range: Tuple[float, float] = (-3.0, 3.0)
    pz_range: Tuple[float, float] = (43.0, 47.0)
    detector: DetectorConfig = DetectorConfig()
    max_rejection_iterations: int = 8

    def detector_simulator(self) -> Detector3D:
        return Detector3D(self.detector)


def _accept(fractions: Sequence[float]) -> bool:
    """Rejection criterion: fractions must be jointly consistent (rescalable)."""
    total = float(sum(fractions))
    return 0.6 <= total <= 1.8


def _rescale(fractions: Sequence[float]) -> List[float]:
    total = float(sum(fractions))
    return [float(f) / total for f in fractions]


def _leptonic_fractions(handle: SimulatorHandle, num_products: int, max_iterations: int) -> List[float]:
    """Energy sharing for leptonic decays (tau -> l nu nu): two neutrinos.

    The three decay code paths (leptonic, one-prong hadronic, multi-prong
    hadronic) are separate functions on purpose: their sample statements sit at
    different call sites and therefore produce *different addresses*, exactly
    like the distinct decay routines inside Sherpa.  Each path contains a
    rejection loop, so trace lengths vary within a path too.
    """
    for _ in range(max_iterations):
        fractions = [
            handle.sample(Uniform(0.02, 1.0), name=f"fraction_{i}") for i in range(num_products)
        ]
        if _accept(fractions):
            return _rescale(fractions)
    return _rescale(fractions)


def _one_prong_fractions(handle: SimulatorHandle, num_products: int, max_iterations: int) -> List[float]:
    """Energy sharing for one-prong hadronic decays (single charged hadron)."""
    for _ in range(max_iterations):
        fractions = [
            handle.sample(Uniform(0.02, 1.0), name=f"fraction_{i}") for i in range(num_products)
        ]
        if _accept(fractions):
            return _rescale(fractions)
    return _rescale(fractions)


def _multi_prong_fractions(handle: SimulatorHandle, num_products: int, max_iterations: int) -> List[float]:
    """Energy sharing for multi-prong hadronic decays (three charged hadrons)."""
    for _ in range(max_iterations):
        fractions = [
            handle.sample(Uniform(0.02, 1.0), name=f"fraction_{i}") for i in range(num_products)
        ]
        if _accept(fractions):
            return _rescale(fractions)
    return _rescale(fractions)


def _energy_fractions(
    handle: SimulatorHandle,
    channel,
    max_iterations: int,
) -> List[float]:
    """Dispatch to the decay routine appropriate for the channel's topology."""
    charged_hadrons = sum(1 for p in channel.products if p.charged and p.name in ("pi", "K"))
    leptonic = any(p.name in ("e", "mu") for p in channel.products)
    if leptonic:
        return _leptonic_fractions(handle, channel.num_products, max_iterations)
    if charged_hadrons >= 3:
        return _multi_prong_fractions(handle, channel.num_products, max_iterations)
    return _one_prong_fractions(handle, channel.num_products, max_iterations)


def tau_decay_program(
    handle: SimulatorHandle,
    config: Optional[TauDecayConfig] = None,
    rng: Optional[RandomState] = None,
) -> Dict[str, Any]:
    """One simulated tau event: returns derived quantities and the detector image."""
    config = config or TauDecayConfig()
    rng = rng or get_rng()
    detector = config.detector_simulator()

    # --- tau production kinematics -------------------------------------------
    px = float(handle.sample(Uniform(*config.px_range), name="px"))
    py = float(handle.sample(Uniform(*config.py_range), name="py"))
    pz = float(handle.sample(Uniform(*config.pz_range), name="pz"))
    tau_momentum = np.array([px, py, pz])
    tau_energy = float(np.sqrt(np.sum(tau_momentum**2) + TAU_MASS**2))

    # --- decay channel ---------------------------------------------------------
    channel_index = int(handle.sample(Categorical(branching_ratios()), name="channel"))
    channel = DECAY_CHANNELS[channel_index]

    # --- decay kinematics (rejection loop, per-topology code path) --------------
    fractions = _energy_fractions(handle, channel, config.max_rejection_iterations)
    product_energies = [max(f * tau_energy, p.mass) for f, p in zip(fractions, channel.products)]

    # --- detector deposition ----------------------------------------------------
    deposits: List[Deposit] = []
    visible_energies: List[float] = []
    invisible_pt = 0.0
    transverse_norm = max(float(np.sqrt(px**2 + py**2)), 1e-6)
    for particle, energy, fraction in zip(channel.products, product_energies, fractions):
        # Impact point follows the tau flight direction, spread by the fraction share.
        offset = 0.8 * (fraction - 0.5)
        impact_x = px / max(abs(pz), 1e-6) * detector.config.transverse_size * 4.0 + offset
        impact_y = py / max(abs(pz), 1e-6) * detector.config.transverse_size * 4.0 - offset
        impact_x = float(np.clip(impact_x, -detector.config.transverse_size, detector.config.transverse_size))
        impact_y = float(np.clip(impact_y, -detector.config.transverse_size, detector.config.transverse_size))
        if particle.visible:
            deposits.append(
                Deposit(
                    energy=float(energy),
                    impact_x=impact_x,
                    impact_y=impact_y,
                    is_electromagnetic=particle.name in ("e", "pi0", "gamma"),
                )
            )
            visible_energies.append(float(energy))
        else:
            invisible_pt += float(energy) * transverse_norm / max(tau_energy, 1e-6)

    expected_image = detector.deposit(deposits)
    simulated_image = detector.observe_noisy(expected_image, rng)
    observed_image = handle.observe(
        Normal(expected_image, detector.config.noise_sigma), value=simulated_image, name="detector"
    )

    # --- derived quantities (the Figure 8 variables) ----------------------------
    sorted_visible = sorted(visible_energies, reverse=True)
    fsp_energy_1 = sorted_visible[0] if sorted_visible else 0.0
    fsp_energy_2 = sorted_visible[1] if len(sorted_visible) > 1 else 0.0
    met = invisible_pt

    return {
        "px": px,
        "py": py,
        "pz": pz,
        "channel": channel_index,
        "channel_name": channel.name,
        "tau_energy": tau_energy,
        "fsp_energy_1": fsp_energy_1,
        "fsp_energy_2": fsp_energy_2,
        "met": met,
        "num_products": channel.num_products,
        "expected_image": expected_image,
        "observed_image": np.asarray(observed_image),
    }


class TauDecayModel(Model):
    """The mini-Sherpa + detector pipeline as a local PPL model."""

    def __init__(self, config: Optional[TauDecayConfig] = None) -> None:
        super().__init__(name="tau-decay")
        self.config = config or TauDecayConfig()

    def forward(self) -> Dict[str, Any]:
        return tau_decay_program(LocalHandle(), self.config)

    @property
    def observation_shape(self) -> Tuple[int, int, int]:
        return self.config.detector.shape


def ground_truth_event(
    config: Optional[TauDecayConfig] = None,
    rng: Optional[RandomState] = None,
    overrides: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], np.ndarray]:
    """Generate a test observation with known ground truth.

    Returns ``(ground_truth, observation)`` where ``ground_truth`` is the
    result dict of one prior execution (optionally with specific latent values
    forced via ``overrides``, e.g. a chosen decay channel) and ``observation``
    is the noisy detector image to condition on — the "test tau observation
    data" of Section 6.4.
    """
    config = config or TauDecayConfig()
    rng = rng or get_rng()
    model = TauDecayModel(config)
    if overrides:
        from repro.ppl.state import Controller

        class _OverrideController(Controller):
            def choose(self, address, instance, distribution, name, inner_rng):
                if name in overrides and instance == 0:
                    value = overrides[name]
                else:
                    value = distribution.sample(inner_rng)
                log_q = float(np.sum(distribution.log_prob(value)))
                return value, log_q

        trace = model.get_trace(_OverrideController(), rng=rng)
    else:
        trace = model.prior_trace(rng)
    result = trace.result
    observation = np.asarray(result["observed_image"], dtype=float)
    return result, observation
