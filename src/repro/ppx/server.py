"""PPX PPL-side controller.

The PPL side of the protocol (Figure 1, right-hand column): it accepts the
simulator's handshake, issues ``Run`` requests, and answers every
``SampleRequest`` / ``ObserveRequest`` the simulator emits during a run.  The
*policy* for answering sample requests (draw from the prior, replay a stored
value, draw from an IC proposal, ...) is supplied by the inference engine as a
callback, so the same controller serves prior sampling, RMH and IC inference.
"""

from __future__ import annotations

import queue
import socket
from typing import Any, Callable, Optional

import numpy as np

from repro.distributions import distribution_from_dict
from repro.ppx.messages import (
    Handshake,
    HandshakeResult,
    ObserveRequest,
    ObserveResult,
    Run,
    RunResult,
    SampleRequest,
    SampleResult,
    ShutdownRequest,
    ShutdownResult,
)
from repro.ppx.transport import Transport
from repro.trace.sample import Sample
from repro.trace.trace import Trace

__all__ = ["SimulatorController"]

#: signature of the sample-policy callback: (address, distribution, request) -> value
SamplePolicy = Callable[[str, Any, SampleRequest], Any]


class SimulatorController:
    """Controls a remote simulator over PPX and records execution traces."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.simulator_name: Optional[str] = None
        self.model_name: Optional[str] = None
        self._handshaken = False

    def _receive(self, timeout: Optional[float], waiting_for: str):
        """Receive one message, converting transport-level timeouts.

        Each transport has its own timeout signal (``queue.Empty`` for the
        in-process queue pair, ``socket.timeout`` for framed sockets); a
        simulator that hangs mid-protocol must surface as a clear
        :class:`TimeoutError` naming what the controller was waiting for,
        not as a transport internal — or, with no timeout, as a silent
        forever-block.
        """
        try:
            return self.transport.receive(timeout=timeout)
        except (queue.Empty, socket.timeout, TimeoutError) as exc:
            raise TimeoutError(
                f"simulator did not respond within {timeout}s while the "
                f"controller was waiting for {waiting_for}"
            ) from exc

    # ------------------------------------------------------------- handshake
    def accept_handshake(self, timeout: Optional[float] = None) -> None:
        message = self._receive(timeout, "its Handshake message")
        if not isinstance(message, Handshake):
            raise RuntimeError(f"expected Handshake, got {type(message).__name__}")
        self.simulator_name = message.system_name
        self.model_name = message.model_name
        self.transport.send(HandshakeResult(accepted=True))
        self._handshaken = True

    # ------------------------------------------------------------------- run
    def run_trace(
        self,
        sample_policy: SamplePolicy,
        observation: Any = None,
        observe_override: Optional[Any] = None,
        timeout: Optional[float] = None,
    ) -> Trace:
        """Execute the simulator once and return the recorded trace.

        ``sample_policy`` decides the value for every latent draw.
        ``observe_override`` (if given) replaces the simulator-reported value
        at observe statements when scoring the likelihood — this is how an
        actual detector observation is conditioned on while the simulator
        still produces its own synthetic output.
        ``timeout`` bounds every wait on the simulator (the handshake and each
        protocol message of the run); a simulator that stops responding raises
        :class:`TimeoutError` instead of blocking the controller forever.
        """
        if not self._handshaken:
            self.accept_handshake(timeout=timeout)
        trace = Trace()
        self.transport.send(Run(observation=_to_wire(observation)))
        while True:
            message = self._receive(timeout, "the next message of its Run")
            if isinstance(message, SampleRequest):
                distribution = distribution_from_dict(message.distribution)
                value = sample_policy(message.address, distribution, message)
                log_prob = float(np.sum(distribution.log_prob(value)))
                trace.add_sample(
                    Sample(
                        address=message.address,
                        distribution=distribution,
                        value=value,
                        observed=False,
                        log_prob=log_prob,
                        controlled=message.control,
                        name=message.name,
                    )
                )
                self.transport.send(SampleResult(value=_to_wire(value)))
            elif isinstance(message, ObserveRequest):
                distribution = distribution_from_dict(message.distribution)
                reported = message.value
                if isinstance(reported, list):
                    reported = np.asarray(reported)
                scored_value = observe_override if observe_override is not None else reported
                log_prob = float(np.sum(distribution.log_prob(scored_value)))
                trace.add_sample(
                    Sample(
                        address=message.address,
                        distribution=distribution,
                        value=scored_value,
                        observed=True,
                        log_prob=log_prob,
                        controlled=False,
                        name=message.name,
                    )
                )
                self.transport.send(ObserveResult())
            elif isinstance(message, RunResult):
                if not message.success:
                    raise RuntimeError(f"simulator failed: {message.error}")
                result = message.result
                if isinstance(result, list):
                    result = np.asarray(result)
                trace.freeze(result=result, observation=observation)
                return trace
            else:
                raise RuntimeError(f"unexpected PPX message {type(message).__name__}")

    # -------------------------------------------------------------- shutdown
    def shutdown(self) -> None:
        try:
            # A simulator that connected but never ran is still blocked in its
            # handshake; complete it so the shutdown request is understood.
            if not self._handshaken:
                self.accept_handshake(timeout=5.0)
            self.transport.send(ShutdownRequest())
            reply = self._receive(5.0, "its ShutdownResult")
            if not isinstance(reply, ShutdownResult):  # pragma: no cover - defensive
                raise RuntimeError("unexpected reply to shutdown")
        finally:
            self.transport.close()


def _to_wire(value):
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
