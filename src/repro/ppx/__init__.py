"""PPX: the probabilistic execution protocol (Section 4.1).

Subpackages:

* :mod:`repro.ppx.messages` — the protocol's message pairs,
* :mod:`repro.ppx.serialization` — the binary wire format (flatbuffers stand-in),
* :mod:`repro.ppx.transport` — in-process and socket transports (ZeroMQ stand-in),
* :mod:`repro.ppx.addresses` — stack-frame addressing with the dladdr-style cache,
* :mod:`repro.ppx.client` — the simulator-side binding,
* :mod:`repro.ppx.server` — the PPL-side controller.
"""

from repro.ppx.addresses import AddressBuilder, extract_address
from repro.ppx.client import SimulatorClient
from repro.ppx.messages import (
    Handshake,
    HandshakeResult,
    Message,
    ObserveRequest,
    ObserveResult,
    Reset,
    Run,
    RunResult,
    SampleRequest,
    SampleResult,
    ShutdownRequest,
    ShutdownResult,
    message_from_dict,
)
from repro.ppx.serialization import decode_message, decode_value, encode_message, encode_value
from repro.ppx.server import SimulatorController
from repro.ppx.transport import (
    QueueTransport,
    SocketTransport,
    Transport,
    connect_tcp,
    listen_tcp,
    make_queue_pair,
)

__all__ = [
    "AddressBuilder",
    "extract_address",
    "SimulatorClient",
    "SimulatorController",
    "Message",
    "Handshake",
    "HandshakeResult",
    "Run",
    "RunResult",
    "SampleRequest",
    "SampleResult",
    "ObserveRequest",
    "ObserveResult",
    "Reset",
    "ShutdownRequest",
    "ShutdownResult",
    "message_from_dict",
    "encode_value",
    "decode_value",
    "encode_message",
    "decode_message",
    "Transport",
    "QueueTransport",
    "SocketTransport",
    "make_queue_pair",
    "connect_tcp",
    "listen_tcp",
]
