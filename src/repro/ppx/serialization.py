"""Binary wire format for PPX messages.

The original PPX uses flatbuffers (a streamlined version of protocol buffers)
so that simulators written in C++, C#, Go, etc. can exchange messages with a
Python PPL.  flatbuffers is unavailable offline, so this module implements a
compact, self-describing, language-agnostic-in-spirit binary encoding:

* every value is encoded as a 1-byte type tag followed by a fixed-width or
  length-prefixed payload (network byte order),
* supported types cover everything PPX needs: None, bool, int64, float64,
  UTF-8 strings, bytes, lists, dicts with string keys, and numpy arrays
  (dtype + shape + raw buffer),
* messages are framed on the transport with a 4-byte big-endian length prefix
  (see :mod:`repro.ppx.transport`).

The encoding is deliberately simple enough to re-implement in another
language in an afternoon, which is the property that matters for the paper's
"lightweight PPL front ends" claim.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

import numpy as np

from repro.ppx.messages import Message, message_from_dict

__all__ = ["encode_value", "decode_value", "encode_message", "decode_message"]

# Type tags --------------------------------------------------------------------
_T_NONE = b"N"
_T_BOOL = b"B"
_T_INT = b"I"
_T_FLOAT = b"F"
_T_STR = b"S"
_T_BYTES = b"Y"
_T_LIST = b"L"
_T_DICT = b"D"
_T_ARRAY = b"A"


def encode_value(value: Any) -> bytes:
    """Encode a Python value into the PPX binary format."""
    if value is None:
        return _T_NONE
    if isinstance(value, bool):
        return _T_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, (int, np.integer)):
        return _T_INT + struct.pack("!q", int(value))
    if isinstance(value, (float, np.floating)):
        return _T_FLOAT + struct.pack("!d", float(value))
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _T_STR + struct.pack("!I", len(raw)) + raw
    if isinstance(value, (bytes, bytearray)):
        return _T_BYTES + struct.pack("!I", len(value)) + bytes(value)
    if isinstance(value, np.ndarray):
        dtype_name = value.dtype.str.encode("ascii")
        # Note: ascontiguousarray promotes 0-d arrays to 1-d, so the shape
        # header must come from the original value.
        contiguous = np.ascontiguousarray(value)
        header = struct.pack("!B", len(dtype_name)) + dtype_name
        header += struct.pack("!B", value.ndim)
        header += struct.pack(f"!{value.ndim}I", *value.shape) if value.ndim else b""
        raw = contiguous.tobytes()
        return _T_ARRAY + header + struct.pack("!I", len(raw)) + raw
    if isinstance(value, (list, tuple)):
        parts = [encode_value(v) for v in value]
        return _T_LIST + struct.pack("!I", len(parts)) + b"".join(parts)
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError("PPX dictionaries must have string keys")
            key_raw = key.encode("utf-8")
            parts.append(struct.pack("!I", len(key_raw)) + key_raw + encode_value(item))
        return _T_DICT + struct.pack("!I", len(parts)) + b"".join(parts)
    raise TypeError(f"cannot encode value of type {type(value).__name__} for PPX")


def decode_value(buffer: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode one value starting at ``offset``; returns ``(value, next_offset)``."""
    tag = buffer[offset : offset + 1]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_BOOL:
        return buffer[offset] == 1, offset + 1
    if tag == _T_INT:
        (value,) = struct.unpack_from("!q", buffer, offset)
        return int(value), offset + 8
    if tag == _T_FLOAT:
        (value,) = struct.unpack_from("!d", buffer, offset)
        return float(value), offset + 8
    if tag == _T_STR:
        (length,) = struct.unpack_from("!I", buffer, offset)
        offset += 4
        return buffer[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = struct.unpack_from("!I", buffer, offset)
        offset += 4
        return bytes(buffer[offset : offset + length]), offset + length
    if tag == _T_ARRAY:
        (dtype_len,) = struct.unpack_from("!B", buffer, offset)
        offset += 1
        dtype = np.dtype(buffer[offset : offset + dtype_len].decode("ascii"))
        offset += dtype_len
        (ndim,) = struct.unpack_from("!B", buffer, offset)
        offset += 1
        shape = struct.unpack_from(f"!{ndim}I", buffer, offset) if ndim else ()
        offset += 4 * ndim
        (raw_len,) = struct.unpack_from("!I", buffer, offset)
        offset += 4
        array = np.frombuffer(buffer[offset : offset + raw_len], dtype=dtype).reshape(shape).copy()
        return array, offset + raw_len
    if tag == _T_LIST:
        (count,) = struct.unpack_from("!I", buffer, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = decode_value(buffer, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        (count,) = struct.unpack_from("!I", buffer, offset)
        offset += 4
        out: Dict[str, Any] = {}
        for _ in range(count):
            (key_len,) = struct.unpack_from("!I", buffer, offset)
            offset += 4
            key = buffer[offset : offset + key_len].decode("utf-8")
            offset += key_len
            value, offset = decode_value(buffer, offset)
            out[key] = value
        return out, offset
    raise ValueError(f"unknown PPX type tag {tag!r} at offset {offset - 1}")


def encode_message(message: Message) -> bytes:
    """Serialise a PPX message to bytes."""
    return encode_value(message.to_dict())


def decode_message(buffer: bytes) -> Message:
    """Deserialise bytes back into a PPX message."""
    payload, _ = decode_value(buffer, 0)
    if not isinstance(payload, dict):
        raise ValueError("PPX message payload must decode to a dictionary")
    return message_from_dict(payload)
