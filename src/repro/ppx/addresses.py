"""Stack-frame based addressing with caching.

The C++ front end of PPX uses concatenated stack frames of each random-number
draw as a unique address identifying a latent variable (Section 4.2).  Stack
traces are obtained with ``backtrace(3)`` and converted to symbolic names with
``dladdr(3)``; because that conversion is expensive, the paper adds a hash map
caching ``dladdr`` results, giving a 5x speed-up in address-string production.

The Python analogue implemented here walks the interpreter frame stack from
the sample/observe call site up to the model entry point and concatenates
``file:function:lineno`` segments.  Symbolisation of a frame (resolving the
qualified function name and relative path) is deliberately factored into
:func:`_symbolise_frame` so that it can be cached per code object — the exact
counterpart of the dladdr cache — and the cache can be switched off for the
ablation benchmark.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Optional, Tuple

__all__ = ["AddressBuilder", "extract_address"]


class AddressBuilder:
    """Builds unique address strings from the current call stack."""

    def __init__(self, use_cache: bool = True, max_depth: int = 16, stop_marker: str = "__ppl_model_entry__") -> None:
        self.use_cache = use_cache
        self.max_depth = max_depth
        self.stop_marker = stop_marker
        self._cache: Dict[int, str] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ frames
    def _symbolise_frame(self, frame) -> str:
        """Resolve one frame to a ``file:function`` segment (the dladdr analogue).

        The work here (path normalisation, qualified-name resolution) is what
        the cache avoids repeating for hot call sites inside simulator loops.
        """
        code = frame.f_code
        filename = code.co_filename
        # Normalise to a short, stable path (basename of package-relative path).
        parts = filename.replace("\\", "/").split("/")
        short = "/".join(parts[-2:]) if len(parts) >= 2 else filename
        qualname = getattr(code, "co_qualname", code.co_name)
        return f"{short}:{qualname}"

    def _segment(self, frame) -> str:
        code = frame.f_code
        if self.use_cache:
            key = id(code)
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                base = cached
            else:
                self.cache_misses += 1
                base = self._symbolise_frame(frame)
                self._cache[key] = base
        else:
            self.cache_misses += 1
            base = self._symbolise_frame(frame)
        return f"{base}:{frame.f_lineno}"

    # ------------------------------------------------------------------ public
    def build(self, skip_frames: int = 2, explicit: Optional[str] = None) -> str:
        """Build the address for the current sample/observe call site.

        ``explicit`` short-circuits stack inspection when the caller provides
        an address (as PPX clients in other languages do), while ``skip_frames``
        drops the PPL-internal frames between the user call and this builder.
        """
        if explicit is not None:
            return explicit
        frame = sys._getframe(skip_frames)
        segments = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code_name = frame.f_code.co_name
            if self.stop_marker in frame.f_locals or code_name == self.stop_marker:
                break
            # Skip internal machinery frames of this package's ppl/ppx layers.
            filename = frame.f_code.co_filename
            if f"{os.sep}repro{os.sep}ppl{os.sep}" in filename or f"{os.sep}repro{os.sep}ppx{os.sep}" in filename:
                frame = frame.f_back
                continue
            segments.append(self._segment(frame))
            frame = frame.f_back
            depth += 1
        if not segments:
            segments = ["<toplevel>"]
        return "|".join(reversed(segments))

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0


_default_builder = AddressBuilder()


def extract_address(skip_frames: int = 2, explicit: Optional[str] = None) -> str:
    """Build an address using the process-default :class:`AddressBuilder`."""
    return _default_builder.build(skip_frames=skip_frames + 1, explicit=explicit)
