"""PPX message definitions.

The probabilistic execution protocol (PPX, Section 4.1 and Figure 1) defines
language-agnostic message pairs covering the call and return values of

1. program entry points (``Handshake``/``HandshakeResult``, ``Run``/``RunResult``),
2. ``sample`` statements for random-number draws, and
3. ``observe`` statements for conditioning.

Each message is a small dataclass with a ``kind`` tag, convertible to/from a
plain dictionary so that :mod:`repro.ppx.serialization` can put it on the wire.
The real PPX uses flatbuffers over ZeroMQ; the wire format here is a compact
self-describing binary encoding over sockets or in-process pipes, preserving
the separation between simulator process and PPL process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

import numpy as np

__all__ = [
    "Message",
    "Handshake",
    "HandshakeResult",
    "Run",
    "RunResult",
    "SampleRequest",
    "SampleResult",
    "ObserveRequest",
    "ObserveResult",
    "Reset",
    "ShutdownRequest",
    "ShutdownResult",
    "message_from_dict",
]

_MESSAGE_TYPES: Dict[str, Type["Message"]] = {}


def _register(cls: Type["Message"]) -> Type["Message"]:
    _MESSAGE_TYPES[cls.__name__] = cls
    return cls


def message_from_dict(payload: Dict[str, Any]) -> "Message":
    kind = payload.get("kind")
    if kind not in _MESSAGE_TYPES:
        raise KeyError(f"unknown PPX message kind {kind!r}")
    body = {k: v for k, v in payload.items() if k != "kind"}
    return _MESSAGE_TYPES[kind](**body)


@dataclass
class Message:
    """Base class for PPX messages."""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": type(self).__name__}
        for key, value in self.__dict__.items():
            if isinstance(value, np.ndarray):
                value = value.tolist()
            out[key] = value
        return out


@_register
@dataclass
class Handshake(Message):
    """Sent by the simulator when it connects: identifies the model."""

    system_name: str = "unknown-simulator"
    model_name: str = "unknown-model"
    language: str = "python"


@_register
@dataclass
class HandshakeResult(Message):
    """PPL's reply to a handshake."""

    system_name: str = "repro-ppl"
    accepted: bool = True


@_register
@dataclass
class Run(Message):
    """Ask the simulator to execute once, optionally with an observation embedded."""

    observation: Optional[Any] = None


@_register
@dataclass
class RunResult(Message):
    """Simulator finished one execution; carries its return value."""

    result: Optional[Any] = None
    success: bool = True
    error: Optional[str] = None


@_register
@dataclass
class SampleRequest(Message):
    """The simulator hit a ``sample`` statement and requests a value."""

    address: str = ""
    distribution: Optional[Dict[str, Any]] = None
    name: Optional[str] = None
    control: bool = True
    replace: bool = False


@_register
@dataclass
class SampleResult(Message):
    """The PPL's choice for a random-number draw."""

    value: Any = None


@_register
@dataclass
class ObserveRequest(Message):
    """The simulator hit an ``observe`` (conditioning) statement."""

    address: str = ""
    distribution: Optional[Dict[str, Any]] = None
    value: Any = None
    name: Optional[str] = None


@_register
@dataclass
class ObserveResult(Message):
    """Acknowledgement of an observe statement."""

    pass


@_register
@dataclass
class Reset(Message):
    """Ask the simulator side to reset per-run state (addresses, counters)."""

    pass


@_register
@dataclass
class ShutdownRequest(Message):
    """Terminate the simulator process."""

    pass


@_register
@dataclass
class ShutdownResult(Message):
    """Acknowledgement of shutdown."""

    pass
