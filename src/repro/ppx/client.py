"""PPX simulator-side binding.

This is the counterpart of the paper's C++ front end: a thin layer that a
stochastic simulator links against in order to route its random-number draws
and conditioning statements to the PPL over the protocol (Section 4.1).  In
this reproduction the "foreign" simulator is a Python callable, possibly in a
separate process connected over a socket, but the binding exposes exactly the
operations a C++ simulator would: ``sample(distribution)`` and
``observe(distribution, value)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.distributions import Distribution
from repro.ppx.addresses import AddressBuilder
from repro.ppx.messages import (
    Handshake,
    HandshakeResult,
    ObserveRequest,
    ObserveResult,
    Reset,
    Run,
    RunResult,
    SampleRequest,
    SampleResult,
    ShutdownRequest,
    ShutdownResult,
)
from repro.ppx.transport import Transport

__all__ = ["SimulatorClient"]


class SimulatorClient:
    """The simulator's handle on the PPX connection.

    Parameters
    ----------
    transport:
        A connected :class:`repro.ppx.transport.Transport`.
    simulator:
        A callable ``simulator(client, observation) -> result`` that expresses
        the stochastic program by calling :meth:`sample` and :meth:`observe`
        on the ``client`` it receives.
    system_name / model_name:
        Identification strings sent in the handshake (e.g. ``"sherpa"``,
        ``"tau-decay"``).
    connect:
        Optional zero-argument factory returning a fresh connected
        :class:`~repro.ppx.transport.Transport` (e.g. ``lambda:
        connect_tcp(host, port)``).  When given, a dropped connection inside
        :meth:`serve_forever` is survived: the old transport is closed, the
        factory dials a new one, the handshake is re-run, and serving
        resumes — up to ``max_reconnects`` times.  Without it, connection
        loss propagates to the caller as before.
    """

    def __init__(
        self,
        transport: Transport,
        simulator: Callable[["SimulatorClient", Any], Any],
        system_name: str = "repro-simulator",
        model_name: str = "model",
        connect: Optional[Callable[[], Transport]] = None,
        max_reconnects: int = 3,
    ) -> None:
        self.transport = transport
        self.simulator = simulator
        self.system_name = system_name
        self.model_name = model_name
        self.connect = connect
        self.max_reconnects = int(max_reconnects)
        self.reconnects = 0
        self.address_builder = AddressBuilder()
        self._running = False

    # ------------------------------------------------------------ sample/observe
    def sample(
        self,
        distribution: Distribution,
        name: Optional[str] = None,
        address: Optional[str] = None,
        control: bool = True,
        replace: bool = False,
    ):
        """Request a value for a random draw from the controlling PPL."""
        resolved = address or self.address_builder.build(skip_frames=2)
        request = SampleRequest(
            address=resolved,
            distribution=distribution.to_dict(),
            name=name,
            control=control,
            replace=replace,
        )
        self.transport.send(request)
        reply = self.transport.receive()
        if not isinstance(reply, SampleResult):
            raise RuntimeError(f"expected SampleResult, got {type(reply).__name__}")
        value = reply.value
        if isinstance(value, list):
            value = np.asarray(value)
        return value

    def observe(
        self,
        distribution: Distribution,
        value,
        name: Optional[str] = None,
        address: Optional[str] = None,
    ) -> None:
        """Report a conditioning statement (likelihood term) to the PPL."""
        resolved = address or self.address_builder.build(skip_frames=2)
        if isinstance(value, np.ndarray):
            wire_value: Any = value
        else:
            wire_value = value
        request = ObserveRequest(
            address=resolved,
            distribution=distribution.to_dict(),
            value=wire_value,
            name=name,
        )
        self.transport.send(request)
        reply = self.transport.receive()
        if not isinstance(reply, ObserveResult):
            raise RuntimeError(f"expected ObserveResult, got {type(reply).__name__}")

    # ----------------------------------------------------------------- serving
    def handshake(self) -> None:
        self.transport.send(
            Handshake(system_name=self.system_name, model_name=self.model_name, language="python")
        )
        reply = self.transport.receive()
        if not isinstance(reply, HandshakeResult) or not reply.accepted:
            raise RuntimeError("PPX handshake rejected by the PPL side")

    def serve_forever(self) -> None:
        """Handshake, then answer Run requests until a shutdown arrives.

        With a ``connect`` factory, a connection drop (EOF, reset, injected
        disconnect) is handled by dialing a fresh transport and re-running the
        handshake; any half-served Run is abandoned — the PPL side owns retry
        of the trace, this side only restores the session.
        """
        self.handshake()
        self._running = True
        while self._running:
            try:
                self._serve_one()
            except (ConnectionError, OSError):
                if not self._running:
                    return
                if self.connect is None or self.reconnects >= self.max_reconnects:
                    raise
                self.reconnects += 1
                self._reconnect()

    def _reconnect(self) -> None:
        try:
            self.transport.close()
        except Exception:
            pass
        assert self.connect is not None
        self.transport = self.connect()
        self.handshake()

    def _serve_one(self) -> None:
        """Receive and answer a single PPX message."""
        message = self.transport.receive()
        if isinstance(message, Run):
            observation = message.observation
            if isinstance(observation, list):
                observation = np.asarray(observation)
            try:
                result = self.simulator(self, observation)
            except ConnectionError:
                raise  # a dropped socket mid-trace is a transport event, not a model error
            except Exception as exc:  # report simulator failures to the PPL
                self.transport.send(RunResult(result=None, success=False, error=str(exc)))
            else:
                self.transport.send(RunResult(result=_to_wire(result), success=True))
        elif isinstance(message, Reset):
            self.address_builder.clear_cache()
        elif isinstance(message, ShutdownRequest):
            self.transport.send(ShutdownResult())
            self._running = False
        else:
            raise RuntimeError(f"unexpected PPX message {type(message).__name__}")

    def stop(self) -> None:
        self._running = False


def _to_wire(value):
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
