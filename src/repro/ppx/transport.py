"""PPX transports.

The original system exchanges PPX messages over ZeroMQ sockets, which allows
communication between separate processes on the same machine (inter-process
sockets) or across a network (TCP).  This module provides the same two
deployment shapes without ZeroMQ:

* :class:`QueueTransport` — an in-process pair of queues, used when the
  "simulator" is a Python callable living in the same process (fast path for
  tests and for the local :class:`repro.ppl.model.Model`).
* :class:`SocketTransport` — a length-prefix framed stream over a TCP or Unix
  domain socket, used when the simulator runs in a *separate process* (the
  Sherpa-like deployment, exercised by ``examples/remote_simulator_ppx.py``).

All transports speak the same framing: a 4-byte big-endian length followed by
the encoded message body.
"""

from __future__ import annotations

import queue
import socket
import struct
import time
from typing import Optional, Tuple

from repro.ppx.messages import Message
from repro.ppx.serialization import decode_message, encode_message
from repro.testing import faults

__all__ = ["Transport", "QueueTransport", "SocketTransport", "make_queue_pair", "connect_tcp", "listen_tcp"]


class Transport:
    """Abstract bidirectional message transport."""

    def send(self, message: Message) -> None:
        raise NotImplementedError

    def receive(self, timeout: Optional[float] = None) -> Message:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class QueueTransport(Transport):
    """In-process transport backed by two queues (one per direction)."""

    def __init__(self, outgoing: "queue.Queue[bytes]", incoming: "queue.Queue[bytes]") -> None:
        self._outgoing = outgoing
        self._incoming = incoming
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: Message) -> None:
        data = encode_message(message)
        self.bytes_sent += len(data)
        self._outgoing.put(data)

    def receive(self, timeout: Optional[float] = None) -> Message:
        data = self._incoming.get(timeout=timeout)
        self.bytes_received += len(data)
        return decode_message(data)


def make_queue_pair() -> Tuple[QueueTransport, QueueTransport]:
    """Create a connected pair of in-process transports (PPL side, simulator side)."""
    a_to_b: "queue.Queue[bytes]" = queue.Queue()
    b_to_a: "queue.Queue[bytes]" = queue.Queue()
    ppl_side = QueueTransport(outgoing=a_to_b, incoming=b_to_a)
    sim_side = QueueTransport(outgoing=b_to_a, incoming=a_to_b)
    return ppl_side, sim_side


class SocketTransport(Transport):
    """Length-prefix framed transport over a connected stream socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: Message) -> None:
        data = encode_message(message)
        # Chaos hooks: `disconnect` closes the socket mid-stream (the peer
        # sees EOF), `garbage` ships a correctly-framed body of zeros (the
        # peer's decode fails).  Free when no fault plan is installed.
        action = faults.perform("transport.send", size=len(data))
        if action is not None:
            if action.kind == "disconnect":
                self.close()
                raise ConnectionError("PPX socket closed (injected disconnect)")
            if action.kind == "garbage":
                data = b"\x00" * len(data)
        frame = struct.pack("!I", len(data)) + data
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError("PPX socket closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def receive(self, timeout: Optional[float] = None) -> Message:
        action = faults.perform("transport.receive")
        if action is not None and action.kind == "disconnect":
            self.close()
            raise ConnectionError("PPX socket closed (injected disconnect)")
        if timeout is not None:
            self._sock.settimeout(timeout)
        header = self._recv_exact(4)
        (length,) = struct.unpack("!I", header)
        body = self._recv_exact(length)
        self.bytes_received += 4 + length
        return decode_message(body)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def listen_tcp(host: str = "127.0.0.1", port: int = 0) -> Tuple[socket.socket, int]:
    """Open a listening TCP socket; returns ``(server_socket, bound_port)``."""
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(1)
    return server, server.getsockname()[1]


def connect_tcp(
    host: str,
    port: int,
    timeout: float = 10.0,
    *,
    attempts: int = 5,
    backoff: float = 0.1,
    deadline: Optional[float] = None,
) -> SocketTransport:
    """Connect to a listening PPX endpoint and wrap it in a transport.

    A refused connection usually means the simulator process is still booting
    (the paper's deployment launches PPL and simulator ranks concurrently),
    so ``ConnectionRefusedError`` is retried with doubling backoff — up to
    ``attempts`` tries, bounded overall by ``deadline`` seconds when given.
    Everything else (timeouts, unreachable hosts, resolution failures) fails
    on the first attempt: those are not still-booting signatures.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    started = time.monotonic()
    delay = max(backoff, 0.0)
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except ConnectionRefusedError:
            elapsed = time.monotonic() - started
            out_of_time = deadline is not None and elapsed + delay >= deadline
            if attempt == attempts - 1 or out_of_time:
                raise ConnectionRefusedError(
                    f"PPX endpoint {host}:{port} refused the connection "
                    f"({attempt + 1} attempt(s) over {elapsed:.2f}s)"
                ) from None
            time.sleep(delay)
            delay = min(delay * 2, 2.0)
        else:
            sock.settimeout(None)
            return SocketTransport(sock)
    raise ConnectionRefusedError(f"PPX endpoint {host}:{port} refused the connection")
