"""Tests for the distributed subsystem: backend, allreduce, trainer, perf model."""

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.data import generate_dataset
from repro.distributed import (
    CORI,
    EDISON,
    PAPER_TABLE2,
    PLATFORMS,
    ClusterPerformanceModel,
    CommunicationStats,
    DistributedTrainer,
    SingleNodeModel,
    SingleProcessCommunicator,
    ThreadGroup,
    average_gradients,
    compare_schemes,
    dense_allreduce,
    evaluate_scheme,
    fused_sparse_allreduce,
    sparse_allreduce,
)
from repro.ppl.nn import InferenceNetwork
from repro.ppl.nn.embeddings import ObservationEmbeddingFC


class TestBackend:
    def test_single_process_communicator(self):
        comm = SingleProcessCommunicator()
        assert comm.rank == 0 and comm.size == 1
        assert np.allclose(comm.allreduce(np.arange(3.0)), np.arange(3.0))
        assert np.allclose(comm.broadcast(np.ones(2)), 1.0)
        assert comm.gather(5) == [5]
        comm.barrier()

    def test_thread_allreduce_sum_and_mean(self):
        group = ThreadGroup(4)
        results = group.run(lambda c: c.allreduce(np.full(3, float(c.rank + 1)), op="sum"))
        assert all(np.allclose(r, 10.0) for r in results)
        results = group.run(lambda c: c.allreduce(np.full(2, float(c.rank)), op="mean"))
        assert all(np.allclose(r, 1.5) for r in results)
        results = group.run(lambda c: c.allreduce(np.array([float(c.rank)]), op="max"))
        assert all(np.allclose(r, 3.0) for r in results)

    def test_thread_broadcast(self):
        group = ThreadGroup(3)
        results = group.run(lambda c: c.broadcast(np.full(2, float(c.rank)), root=1))
        assert all(np.allclose(r, 1.0) for r in results)

    def test_thread_gather(self):
        group = ThreadGroup(3)
        results = group.run(lambda c: c.gather(c.rank, root=0))
        assert results[0] == [0, 1, 2]
        assert results[1] is None and results[2] is None

    def test_thread_multiple_collectives_in_sequence(self):
        group = ThreadGroup(2)

        def work(comm):
            a = comm.allreduce(np.array([1.0]))
            b = comm.allreduce(np.array([float(comm.rank)]))
            comm.barrier()
            return float(a[0] + b[0])

        assert group.run(work) == [3.0, 3.0]

    def test_thread_invalid_op(self):
        group = ThreadGroup(2)
        with pytest.raises(ValueError):
            group.run(lambda c: c.allreduce(np.ones(1), op="bogus"))

    def test_group_validation(self):
        with pytest.raises(ValueError):
            ThreadGroup(0)
        group = ThreadGroup(2)
        with pytest.raises(ValueError):
            group.communicator(5)


def _make_per_rank_gradients():
    """Two ranks with overlapping but different non-null gradient sets."""
    shapes = {"shared": (4,), "only_a": (2, 2), "only_b": (3,), "never": (5,)}
    rank_a = {"shared": np.ones(4), "only_a": np.full((2, 2), 2.0)}
    rank_b = {"shared": np.full(4, 3.0), "only_b": np.full(3, 4.0)}
    names = sorted(shapes)
    return [rank_a, rank_b], names, shapes


class TestAllreduce:
    def test_all_strategies_agree_numerically(self):
        grads, names, shapes = _make_per_rank_gradients()
        dense = dense_allreduce(grads, names, shapes)
        sparse = sparse_allreduce(grads, names, shapes)
        fused = fused_sparse_allreduce(grads, names, shapes, bucket_elements=5)
        for name in ("shared", "only_a", "only_b"):
            assert np.allclose(dense[name], sparse[name])
            assert np.allclose(dense[name], fused[name])
        assert np.allclose(dense["shared"], 2.0)       # (1 + 3) / 2
        assert np.allclose(dense["only_a"], 1.0)        # (2 + 0) / 2
        assert np.allclose(dense["never"], 0.0)
        assert "never" not in sparse and "never" not in fused

    def test_sparse_moves_fewer_elements_than_dense(self):
        grads, names, shapes = _make_per_rank_gradients()
        dense_stats, sparse_stats = CommunicationStats(), CommunicationStats()
        dense_allreduce(grads, names, shapes, dense_stats)
        sparse_allreduce(grads, names, shapes, sparse_stats)
        assert sparse_stats.elements < dense_stats.elements
        assert sparse_stats.modeled_time < dense_stats.modeled_time

    def test_fusion_reduces_number_of_calls(self):
        grads, names, shapes = _make_per_rank_gradients()
        sparse_stats, fused_stats = CommunicationStats(), CommunicationStats()
        sparse_allreduce(grads, names, shapes, sparse_stats)
        fused_sparse_allreduce(grads, names, shapes, bucket_elements=10_000, stats=fused_stats)
        assert fused_stats.num_calls < sparse_stats.num_calls
        assert fused_stats.modeled_time <= sparse_stats.modeled_time

    def test_average_gradients_dispatch(self):
        grads, names, shapes = _make_per_rank_gradients()
        for strategy in ("dense", "sparse", "fused_sparse"):
            out = average_gradients(grads, names, shapes, strategy=strategy)
            assert np.allclose(out["shared"], 2.0)
        with pytest.raises(ValueError):
            average_gradients(grads, names, shapes, strategy="bogus")

    def test_communication_stats_accounting(self):
        stats = CommunicationStats(latency_s=1e-3, bandwidth_bytes_per_s=1e6)
        stats.add_call(1000)
        assert stats.bytes == 4000
        assert stats.modeled_time == pytest.approx(1e-3 + 4000 / 1e6)

    def test_single_rank_average_is_identity(self):
        grads = [{"w": np.arange(4.0)}]
        out = average_gradients(grads, ["w"], {"w": (4,)}, strategy="sparse")
        assert np.allclose(out["w"], np.arange(4.0))


class TestPerformanceModel:
    def test_table1_platform_registry(self):
        assert set(PLATFORMS) == {"IVB", "HSW", "BDW", "SKL", "CSL"}
        assert PLATFORMS["HSW"].cores_per_socket == 16
        assert PLATFORMS["IVB"].peak_sp_gflops_per_socket == pytest.approx(460.8)

    def test_table2_shape_matches_paper_ordering(self):
        model = SingleNodeModel()  # calibrated on the paper's HSW rate
        table = model.table2()
        # Ordering of single-socket throughput across platforms matches Table 2.
        ours = [table[code]["1socket_traces_per_s"] for code in ("IVB", "HSW", "BDW", "SKL", "CSL")]
        paper = [PAPER_TABLE2[code]["1socket"] for code in ("IVB", "HSW", "BDW", "SKL", "CSL")]
        assert np.argsort(ours).tolist() == np.argsort(paper).tolist()
        # And each platform is within 25% of the paper's measured traces/s.
        for code in PAPER_TABLE2:
            assert table[code]["1socket_traces_per_s"] == pytest.approx(
                PAPER_TABLE2[code]["1socket"], rel=0.25
            )

    def test_two_sockets_scale_sublinearly(self):
        model = SingleNodeModel()
        for code in PLATFORMS:
            one = model.throughput(code, 1)
            two = model.throughput(code, 2)
            assert one < two < 2 * one

    def test_custom_measured_rate_rescales(self):
        model = SingleNodeModel(reference_platform="HSW", measured_traces_per_s=100.0)
        assert model.throughput("HSW", 1) == pytest.approx(100.0)
        assert model.throughput("IVB", 1) < 100.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            SingleNodeModel(reference_platform="XXX")

    def test_weak_scaling_monotone_and_below_ideal(self):
        model = ClusterPerformanceModel(CORI, rng=RandomState(0))
        points = model.weak_scaling([1, 16, 64, 256, 1024], iterations=5)
        throughputs = [p.average_traces_per_s for p in points]
        assert all(a < b for a, b in zip(throughputs, throughputs[1:]))
        for p in points:
            assert p.average_traces_per_s <= p.ideal_traces_per_s
            assert p.peak_traces_per_s >= p.average_traces_per_s
        # Efficiency decreases with node count (Figure 6's gap from ideal).
        assert points[-1].efficiency < points[0].efficiency

    def test_weak_scaling_cori_faster_than_edison(self):
        cori = ClusterPerformanceModel(CORI, rng=RandomState(0)).weak_scaling([1024], iterations=5)[0]
        edison = ClusterPerformanceModel(EDISON, rng=RandomState(0)).weak_scaling([1024], iterations=5)[0]
        assert cori.average_traces_per_s > edison.average_traces_per_s

    def test_phase_breakdown_imbalance_grows_with_sockets(self):
        model = ClusterPerformanceModel(CORI, rng=RandomState(1))
        breakdown = model.phase_breakdown([1, 2, 64], iterations=20)
        imbalances = [b.imbalance_percent for b in breakdown]
        assert imbalances[0] == pytest.approx(0.0, abs=1e-9)
        assert imbalances[1] < imbalances[2]
        assert "sync" in breakdown[2].actual
        assert "sync" not in breakdown[0].actual

    def test_phase_breakdown_phases_present(self):
        model = ClusterPerformanceModel(CORI, rng=RandomState(2))
        breakdown = model.phase_breakdown([2], iterations=5)[0]
        for phase in ("batch_read", "forward", "backward", "optimizer"):
            assert phase in breakdown.actual and phase in breakdown.best
            assert breakdown.actual[phase] >= breakdown.best[phase]


def build_trainer(dataset, num_ranks=2, **kwargs):
    config = Config(
        observation_shape=(8, 11, 11),
        lstm_hidden=16,
        observation_embedding_dim=8,
        address_embedding_dim=4,
        sample_embedding_dim=3,
        proposal_mixture_components=2,
    )
    network = InferenceNetwork(config=config, observe_key="detector")
    return DistributedTrainer(
        network, dataset, num_ranks=num_ranks, local_minibatch_size=4, learning_rate=2e-3, **kwargs
    ), network


class TestDistributedTrainer:
    def test_training_reduces_loss(self, tiny_tau_dataset):
        trainer, _ = build_trainer(tiny_tau_dataset)
        report = trainer.train(12)
        assert len(report.train_losses) == 12
        assert min(report.train_losses[-4:]) < report.train_losses[0]
        assert report.traces_per_iteration == 8
        assert report.num_parameters > 0

    def test_validation_split_and_loss(self, tiny_tau_dataset):
        trainer, _ = build_trainer(tiny_tau_dataset, validation_fraction=0.2)
        report = trainer.train(4, validate_every=2)
        assert len(report.validation_losses) == 2
        assert report.validation_iterations == [2, 4]
        assert np.isfinite(report.validation_losses[0])

    def test_no_validation_split_raises(self, tiny_tau_dataset):
        trainer, _ = build_trainer(tiny_tau_dataset, validation_fraction=0.0)
        with pytest.raises(RuntimeError):
            trainer.validate()

    def test_multi_rank_matches_single_rank_when_data_identical(self, tau_model, rng):
        """Averaging gradients over ranks = one big minibatch (synchronous SGD algebra)."""
        from repro.data import InMemoryTraceDataset

        traces = tau_model.prior_traces(16, rng=rng)
        # Duplicate the same 8 traces so both ranks see identical data.
        dataset = InMemoryTraceDataset(traces[:8] + traces[:8])
        trainer_two, network_two = build_trainer(dataset, num_ranks=2, sort_dataset=False, validation_fraction=0.0, seed=1)
        dataset_one = InMemoryTraceDataset(traces[:8] + traces[:8])
        trainer_one, network_one = build_trainer(dataset_one, num_ranks=1, sort_dataset=False, validation_fraction=0.0, seed=1)
        network_one.load_state_dict(network_two.state_dict())
        report_two = trainer_two.train(1)
        report_one = trainer_one.train(1)
        # Same data + same initial weights => same loss magnitude scale.
        assert report_two.train_losses[0] == pytest.approx(report_one.train_losses[0], rel=0.3)

    def test_allreduce_strategies_give_same_training(self, tiny_tau_dataset):
        losses = {}
        for strategy in ("dense", "fused_sparse"):
            trainer, network = build_trainer(tiny_tau_dataset, allreduce_strategy=strategy, seed=7)
            if strategy == "dense":
                reference_state = network.state_dict()
            else:
                network.load_state_dict(reference_state)
            report = trainer.train(3)
            losses[strategy] = report.train_losses
        assert np.allclose(losses["dense"], losses["fused_sparse"], rtol=1e-6)

    def test_report_throughput_and_phases(self, tiny_tau_dataset):
        trainer, _ = build_trainer(tiny_tau_dataset)
        report = trainer.train(3)
        assert report.mean_throughput > 0
        assert report.best_throughput >= report.mean_throughput
        assert report.load_imbalance_percent >= 0
        for phase in ("batch_read", "forward_backward", "sync", "optimizer"):
            assert phase in report.phase_means
        assert all(stats.num_calls > 0 for stats in report.communication)
        assert all(size >= 1.0 for size in report.effective_minibatch_sizes)

    def test_lr_schedule_and_larc(self, tiny_tau_dataset):
        trainer, _ = build_trainer(
            tiny_tau_dataset, larc=True, lr_schedule="poly2", total_iterations_hint=6
        )
        report = trainer.train(6)
        assert report.learning_rates[-1] < report.learning_rates[0]

    def test_invalid_configuration(self, tiny_tau_dataset):
        with pytest.raises(ValueError):
            build_trainer(tiny_tau_dataset, num_ranks=0)
        with pytest.raises(ValueError):
            build_trainer(tiny_tau_dataset, optimizer="bogus")
        with pytest.raises(ValueError):
            build_trainer(tiny_tau_dataset, lr_schedule="bogus")

    def test_epoch_rollover(self, tau_model, rng):
        dataset = generate_dataset(tau_model, 20, rng=rng)
        trainer, _ = build_trainer(dataset, validation_fraction=0.0)
        # More iterations than chunks per epoch forces the sampler to re-shuffle.
        report = trainer.train(8)
        assert len(report.train_losses) == 8


class TestLoadBalance:
    def test_sorting_improves_effective_minibatch(self, tiny_tau_dataset):
        unsorted = evaluate_scheme(tiny_tau_dataset, scheme="unsorted", num_ranks=2, local_minibatch_size=8)
        sorted_eval = evaluate_scheme(tiny_tau_dataset, scheme="sorted", num_ranks=2, local_minibatch_size=8)
        assert sorted_eval.mean_effective_minibatch >= unsorted.mean_effective_minibatch

    def test_bucketing_reduces_imbalance(self, tau_model, rng):
        dataset = generate_dataset(tau_model, 200, rng=rng)
        sorted_eval = evaluate_scheme(dataset, scheme="sorted", num_ranks=4, local_minibatch_size=8)
        bucketed = evaluate_scheme(dataset, scheme="bucketing", num_ranks=4, local_minibatch_size=8, num_buckets=5)
        assert bucketed.mean_imbalance_percent <= sorted_eval.mean_imbalance_percent + 1e-9

    def test_dynamic_batching_balances_tokens(self, tiny_tau_dataset):
        dynamic = evaluate_scheme(tiny_tau_dataset, scheme="dynamic", num_ranks=2, local_minibatch_size=8)
        assert dynamic.iterations > 0
        assert dynamic.mean_imbalance_percent < 50.0

    def test_compare_schemes_returns_all(self, tiny_tau_dataset):
        results = compare_schemes(tiny_tau_dataset, num_ranks=2, local_minibatch_size=8)
        assert set(results) == {"unsorted", "sorted", "bucketing", "dynamic"}
        for evaluation in results.values():
            assert evaluation.throughput_proxy > 0

    def test_unknown_scheme_rejected(self, tiny_tau_dataset):
        with pytest.raises(ValueError):
            evaluate_scheme(tiny_tau_dataset, scheme="bogus")


class TestShardJobs:
    def test_even_and_uneven_sharding(self):
        from repro.distributed import shard_jobs

        jobs = list(range(10))
        shards = shard_jobs(jobs, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert [j for shard in shards for j in shard] == jobs  # order preserved

    def test_min_shard_size_caps_shard_count(self):
        from repro.distributed import shard_jobs

        jobs = list(range(10))
        assert len(shard_jobs(jobs, 8, min_shard_size=4)) == 2
        assert len(shard_jobs(jobs, 8, min_shard_size=16)) == 1  # too small to split
        assert shard_jobs([], 4) == []
        with pytest.raises(ValueError):
            shard_jobs(jobs, 4, min_shard_size=0)
