"""Tests of the batched lockstep inference engine and the distributed driver.

The load-bearing property: because every trace owns a child random stream
derived from (master seed, trace index), the posterior is independent of the
cohort partitioning — ``batch_size=1`` (the sequential ProposalSession
reference) and any ``batch_size>1`` must produce the same traces up to
floating-point batching effects.
"""

import numpy as np
import pytest

from repro import ppl
from repro.common.rng import RandomState
from repro.distributions import Normal, Uniform
from repro.ppl import FunctionModel
from repro.ppl.inference import (
    batched_importance_sampling,
    mixed_batched_importance_sampling,
    per_trace_rngs,
)
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.distributed.inference import distributed_importance_sampling, partition_traces
from tests.conftest import gaussian_posterior


def lockstep_program():
    """Fixed three-address control flow with per-trace prior parameters."""
    a = ppl.sample(Uniform(-2.0, 2.0), name="a", address="addr_a")
    b = ppl.sample(Normal(a, 1.0), name="b", address="addr_b")
    c = ppl.sample(Uniform(b - 1.0, b + 1.0), name="c", address="addr_c")
    ppl.observe(Normal(np.array([a, b, c, a + b + c]), 0.4), name="obs")
    return a


def loopy_program():
    """Variable trace length: cohort members finish at different rounds."""
    total = 0.0
    count = 0
    while total < 1.0 and count < 10:
        total += ppl.sample(Uniform(0.4, 0.6), name="step")
        count += 1
    ppl.observe(Normal(total, 0.1), name="obs")
    return count


OBSERVATION = {"obs": np.array([0.6, 1.1, 0.9, 2.6])}


@pytest.fixture(scope="module")
def lockstep_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


@pytest.fixture(scope="module")
def loopy_engine():
    model = FunctionModel(loopy_program, name="loopy")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=1, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(1),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


class TestBatchedSequentialEquivalence:
    def test_lockstep_model_means_match_to_high_precision(self, lockstep_engine):
        model, engine = lockstep_engine
        results = {}
        for batch_size in (1, 16, 64):
            results[batch_size] = batched_importance_sampling(
                model, OBSERVATION, num_traces=64, batch_size=batch_size,
                network=engine.network, rng=RandomState(7),
            )
        reference = results[1]
        for batch_size in (16, 64):
            posterior = results[batch_size]
            for latent in ("a", "b", "c"):
                assert posterior.extract(latent).mean == pytest.approx(
                    reference.extract(latent).mean, abs=1e-6
                )
            assert posterior.log_evidence == pytest.approx(reference.log_evidence, abs=1e-6)
        stats = results[64].engine_stats
        assert stats["num_cohorts"] == 1
        assert stats["num_divergent_rounds"] == 0
        assert stats["num_fallbacks"] == 0
        # Lockstep: 3 addresses -> 3 rounds, each one batched step.
        assert stats["num_rounds"] == 3
        assert stats["num_batched_steps"] == 3

    def test_divergent_control_flow_still_matches_sequential(self, loopy_engine):
        model, engine = loopy_engine
        sequential = batched_importance_sampling(
            model, {"obs": 1.2}, num_traces=48, batch_size=1,
            network=engine.network, rng=RandomState(9),
        )
        cohort = batched_importance_sampling(
            model, {"obs": 1.2}, num_traces=48, batch_size=48,
            network=engine.network, rng=RandomState(9),
        )
        assert [t.length for t in cohort.values] == [t.length for t in sequential.values]
        numeric = [t["step"] for t in cohort.values]
        reference = [t["step"] for t in sequential.values]
        assert np.allclose(numeric, reference, atol=1e-9)
        # One lockstep round per still-running trace draw: the round count is
        # the longest trace, and the cohort shrinks as traces finish early.
        assert cohort.engine_stats["num_rounds"] == max(t.length for t in cohort.values)

    def test_address_divergence_groups_and_matches_sequential(self):
        def branching_program():
            z = ppl.sample(Uniform(0.0, 1.0), name="z", address="addr_z")
            if z < 0.5:
                x = ppl.sample(Normal(-1.0, 0.5), name="x", address="addr_left")
            else:
                x = ppl.sample(Normal(1.0, 0.5), name="x", address="addr_right")
            ppl.observe(Normal(x, 0.5), name="obs")
            return x

        model = FunctionModel(branching_program, name="branching")
        engine = InferenceCompilation(
            observation_embedding=ObservationEmbeddingFC(input_dim=1, embedding_dim=16),
            observe_key="obs",
            rng=RandomState(2),
        )
        engine.train(model, num_traces=300, minibatch_size=20, learning_rate=3e-3)
        sequential = batched_importance_sampling(
            model, {"obs": 0.4}, num_traces=32, batch_size=1,
            network=engine.network, rng=RandomState(21),
        )
        cohort = batched_importance_sampling(
            model, {"obs": 0.4}, num_traces=32, batch_size=32,
            network=engine.network, rng=RandomState(21),
        )
        assert cohort.extract("x").mean == pytest.approx(sequential.extract("x").mean, abs=1e-6)
        branch_taken = {t.samples[1].address for t in cohort.values}
        if len(branch_taken) > 1:
            # Both branches present in the cohort: the second round split into
            # per-address sub-batches.
            assert cohort.engine_stats["num_divergent_rounds"] >= 1
            assert cohort.engine_stats["num_batched_steps"] >= 3

    def test_remainder_cohort_and_partitioning_invariance(self, lockstep_engine):
        model, engine = lockstep_engine
        uneven = batched_importance_sampling(
            model, OBSERVATION, num_traces=10, batch_size=4,
            network=engine.network, rng=RandomState(3),
        )
        assert len(uneven) == 10
        assert uneven.engine_stats["num_cohorts"] == 3
        even = batched_importance_sampling(
            model, OBSERVATION, num_traces=10, batch_size=5,
            network=engine.network, rng=RandomState(3),
        )
        assert even.extract("a").mean == pytest.approx(uneven.extract("a").mean, abs=1e-6)


class TestFallbackAndPriorModes:
    def test_unseen_address_falls_back_to_prior(self, lockstep_engine):
        _, engine = lockstep_engine
        engine.network.freeze_architecture()

        def extended_program():
            lockstep_program()
            ppl.sample(Normal(0.0, 1.0), name="extra", address="addr_extra")

        extended = FunctionModel(extended_program, name="extended")
        posterior = batched_importance_sampling(
            extended, OBSERVATION, num_traces=12, batch_size=12,
            network=engine.network, rng=RandomState(4),
        )
        assert posterior.engine_stats["num_fallbacks"] == 12
        assert np.all(np.isfinite(posterior.log_weights))

    def test_prior_mode_recovers_conjugate_posterior(self, gaussian_model):
        y = 1.2
        posterior = batched_importance_sampling(
            gaussian_model, {"obs": y}, num_traces=4000, batch_size=256,
            network=None, rng=RandomState(5),
        )
        true_mean, true_std = gaussian_posterior(y)
        mu = posterior.extract("mu")
        assert mu.mean == pytest.approx(true_mean, abs=0.08)
        assert mu.stddev == pytest.approx(true_std, abs=0.08)

    def test_trace_callback_and_validation(self, gaussian_model):
        seen = []
        batched_importance_sampling(
            gaussian_model, {"obs": 0.0}, num_traces=7, batch_size=4, network=None,
            rng=RandomState(6), trace_callback=lambda t, w: seen.append(w),
        )
        assert len(seen) == 7
        with pytest.raises(ValueError):
            batched_importance_sampling(gaussian_model, {"obs": 0.0}, num_traces=0)
        with pytest.raises(ValueError):
            batched_importance_sampling(gaussian_model, {"obs": 0.0}, num_traces=4, batch_size=0)

    def test_guided_run_requires_trace_log_q(self, lockstep_engine):
        model, engine = lockstep_engine

        class NoLogQModel(FunctionModel):
            def get_trace(self, controller=None, observed_values=None, rng=None):
                trace = super().get_trace(controller, observed_values=observed_values, rng=rng)
                del trace.log_q
                return trace

        stripped = NoLogQModel(lockstep_program, name="no_log_q")
        with pytest.raises(ValueError, match="log_q"):
            batched_importance_sampling(
                stripped, OBSERVATION, num_traces=4, batch_size=4,
                network=engine.network, rng=RandomState(16),
            )

    def test_multiple_observes_require_observe_key(self, lockstep_engine):
        model, engine = lockstep_engine
        engine.network.observe_key = None
        try:
            with pytest.raises(ValueError):
                batched_importance_sampling(
                    model, {"a": 0.0, "b": 1.0}, num_traces=4, network=engine.network
                )
        finally:
            engine.network.observe_key = "obs"

    def test_uncontrolled_draw_between_controlled_steps(self):
        # The previous-sample embedding must come from the last *controlled*
        # draw: an uncontrolled value encoded under a categorical previous
        # prior would one-hot an out-of-range index and crash.
        from repro.distributions import Categorical

        def program():
            k = ppl.sample(Categorical([0.4, 0.3, 0.3]), name="k", address="addr_k")
            skip = ppl.sample(Normal(7.5, 0.1), name="skip", address="addr_skip", control=False)
            x = ppl.sample(Normal(float(k), 1.0), name="x", address="addr_x")
            ppl.observe(Normal(x + skip, 0.5), name="obs")
            return x

        model = FunctionModel(program, name="uncontrolled_middle")
        engine = InferenceCompilation(
            observation_embedding=ObservationEmbeddingFC(input_dim=1, embedding_dim=16),
            observe_key="obs",
            rng=RandomState(14),
        )
        engine.train(model, num_traces=200, minibatch_size=20)
        for batch_size in (1, 8):
            posterior = batched_importance_sampling(
                model, {"obs": 8.0}, num_traces=8, batch_size=batch_size,
                network=engine.network, rng=RandomState(15),
            )
            assert np.all(np.isfinite(posterior.log_weights))

    def test_per_trace_rngs_are_reproducible_and_distinct(self):
        streams_a = per_trace_rngs(RandomState(11), 4)
        streams_b = per_trace_rngs(RandomState(11), 4)
        draws_a = [s.random() for s in streams_a]
        draws_b = [s.random() for s in streams_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 4

    def test_per_trace_rngs_adjacent_bases_do_not_collide(self):
        # Regression: child seeds used to be base + index, so two requests
        # whose random bases landed within num_traces of each other shared
        # identical trace streams for the overlapping indices (request A,
        # base b, trace i+1 == request B, base b+1, trace i).  Pin the bases
        # to the worst case — adjacent — and require all streams distinct.
        import types

        bases = iter([1_000_000, 1_000_001])
        master = RandomState(0)
        master._gen = types.SimpleNamespace(
            integers=lambda low, high=None, size=None: next(bases)
        )
        streams_a = per_trace_rngs(master, 6)
        streams_b = per_trace_rngs(master, 6)
        draws = [tuple(stream.random(size=4)) for stream in streams_a + streams_b]
        assert len(set(draws)) == len(draws)


class TestBatchedDistributionObjects:
    """The lockstep engine's proposal steps build O(1) objects, not O(B*K)."""

    def test_lockstep_builds_no_per_trace_proposal_objects(self, lockstep_engine, monkeypatch):
        from repro.distributions import Mixture, TruncatedNormal

        counts = {"mixtures": 0, "truncated_batches": 0}
        original_init = Mixture.__init__
        original_build = TruncatedNormal.batch_build.__func__

        def counting_init(self, *args, **kwargs):
            counts["mixtures"] += 1
            return original_init(self, *args, **kwargs)

        def counting_build(cls, *args, **kwargs):
            counts["truncated_batches"] += 1
            return original_build(cls, *args, **kwargs)

        monkeypatch.setattr(Mixture, "__init__", counting_init)
        monkeypatch.setattr(TruncatedNormal, "batch_build", classmethod(counting_build))
        model, engine = lockstep_engine
        batched_importance_sampling(
            model, OBSERVATION, num_traces=32, batch_size=32,
            network=engine.network, rng=RandomState(23),
        )
        # All proposal emission goes through array-parameterised batched
        # objects: zero per-trace Mixtures, zero truncated-normal component
        # builds, regardless of cohort size.
        assert counts == {"mixtures": 0, "truncated_batches": 0}

    def test_single_slot_lockstep_group_bit_identical(self, lockstep_engine):
        # batch_size=1 cohorts route through _run_sequential, so the engine
        # never runs a one-slot lockstep session; drive one directly to pin
        # the degenerate single-member address group (which also arises as a
        # divergence sub-batch inside larger cohorts).
        from repro.distributions import Uniform
        from repro.ppl.inference.batched import resolve_observation_array

        _, engine = lockstep_engine
        network = engine.network
        observation_array = resolve_observation_array(network, OBSERVATION)
        address = next(iter(network.address_specs))
        prior = Uniform(-2.0, 2.0)
        batched_session = network.batched_session(observation_array, 1)
        per_object_session = network.batched_session(
            observation_array, 1, batched_proposals=False
        )
        proposal_b = batched_session.proposals([(0, address, prior, None)])[0]
        proposal_p = per_object_session.proposals([(0, address, prior, None)])[0]
        value_b = proposal_b.sample(RandomState(5))
        value_p = proposal_p.sample(RandomState(5))
        assert float(value_b) == float(value_p)
        assert float(proposal_b.log_prob(value_b)) == float(proposal_p.log_prob(value_p))

    def test_batched_objects_bit_identical_to_per_object_engine(self, lockstep_engine):
        model, engine = lockstep_engine
        for batch_size in (16, 64):
            batched_objects = batched_importance_sampling(
                model, OBSERVATION, num_traces=64, batch_size=batch_size,
                network=engine.network, rng=RandomState(29),
            )
            per_objects = batched_importance_sampling(
                model, OBSERVATION, num_traces=64, batch_size=batch_size,
                network=engine.network, rng=RandomState(29),
                batched_proposals=False,
            )
            # Same NN forwards, same rng consumption, only the distribution
            # representation differs -> the traces must agree bit for bit.
            assert np.array_equal(batched_objects.log_weights, per_objects.log_weights)
            for trace_a, trace_b in zip(batched_objects.values, per_objects.values):
                for latent in ("a", "b", "c"):
                    assert float(np.asarray(trace_a[latent])) == float(np.asarray(trace_b[latent]))


class TestMixedObservationEngine:
    """Requests for different observations share cohorts without changing results."""

    OBSERVATION_B = {"obs": np.array([-0.5, 0.2, 0.4, 0.1])}

    def test_mixed_requests_match_direct_runs(self, lockstep_engine):
        model, engine = lockstep_engine
        requests = [
            (OBSERVATION, 10, RandomState(31)),
            (self.OBSERVATION_B, 14, RandomState(32)),
            (OBSERVATION, 6, RandomState(33)),
        ]
        served = mixed_batched_importance_sampling(
            model, requests, batch_size=16, network=engine.network
        )
        assert [len(result) for result in served] == [10, 14, 6]
        for (observation, num_traces, _), result in zip(requests, served):
            direct = batched_importance_sampling(
                model, observation, num_traces=num_traces, batch_size=64,
                network=engine.network,
                rng=RandomState({10: 31, 14: 32, 6: 33}[num_traces]),
            )
            for latent in ("a", "b", "c"):
                assert result.extract(latent).mean == pytest.approx(
                    direct.extract(latent).mean, abs=1e-9
                )
            assert result.log_evidence == pytest.approx(direct.log_evidence, abs=1e-9)

    def test_duplicate_observations_share_embeddings(self, lockstep_engine):
        model, engine = lockstep_engine
        # Two requests for the SAME observation in one cohort: the session
        # must embed the observation once, not once per slot or per request.
        served = mixed_batched_importance_sampling(
            model,
            [(OBSERVATION, 8, RandomState(41)), (OBSERVATION, 8, RandomState(42))],
            batch_size=16,
            network=engine.network,
        )
        stats = served[0].engine_stats
        assert stats["num_cohorts"] == 1
        assert stats["num_observation_embeddings"] == 1

    def test_prior_mode_and_validation(self, gaussian_model):
        results = mixed_batched_importance_sampling(
            gaussian_model,
            [({"obs": 0.5}, 20, RandomState(1)), ({"obs": -0.5}, 20, RandomState(2))],
            batch_size=8,
            network=None,
        )
        assert results[0].extract("mu").mean > results[1].extract("mu").mean
        with pytest.raises(ValueError):
            mixed_batched_importance_sampling(gaussian_model, [({"obs": 0.0}, 0, None)])
        with pytest.raises(ValueError):
            mixed_batched_importance_sampling(
                gaussian_model, [({"obs": 0.0}, 4, None)], batch_size=0
            )

    def test_posterior_many_wiring(self, lockstep_engine):
        model, engine = lockstep_engine
        many = engine.posterior_many(
            model,
            [(OBSERVATION, 8, RandomState(51)), (self.OBSERVATION_B, 8, RandomState(52))],
            batch_size=16,
        )
        direct = engine.posterior(model, OBSERVATION, num_traces=8, rng=RandomState(51))
        assert many[0].extract("a").mean == pytest.approx(direct.extract("a").mean, abs=1e-9)


class TestInferenceCompilationWiring:
    def test_posterior_runs_through_batched_engine(self, lockstep_engine):
        model, engine = lockstep_engine
        posterior = engine.posterior(model, OBSERVATION, num_traces=32, rng=RandomState(8))
        assert posterior.engine_stats["num_batched_steps"] > 0
        sequential = engine.posterior(
            model, OBSERVATION, num_traces=32, rng=RandomState(8), batch_size=1
        )
        assert posterior.extract("a").mean == pytest.approx(
            sequential.extract("a").mean, abs=1e-6
        )


class TestDistributedDriver:
    def test_partition_traces_unequal(self):
        assert partition_traces(10, 3) == [4, 3, 3]
        assert partition_traces(2, 4) == [1, 1, 0, 0]
        with pytest.raises(ValueError):
            partition_traces(0, 3)
        with pytest.raises(ValueError):
            partition_traces(10, 0)

    def test_merged_posterior_has_all_ranks(self, lockstep_engine):
        model, engine = lockstep_engine
        merged = distributed_importance_sampling(
            model, OBSERVATION, num_traces=10, num_ranks=3, batch_size=4,
            network=engine.network, rng=RandomState(12),
        )
        assert len(merged) == 10
        assert merged.per_rank_sizes == [4, 3, 3]
        assert merged.engine_stats["num_batched_steps"] > 0

    def test_parallel_matches_sequential_ranks(self, lockstep_engine):
        model, engine = lockstep_engine
        kwargs = dict(num_traces=12, num_ranks=3, batch_size=4, network=engine.network)
        sequential = distributed_importance_sampling(
            model, OBSERVATION, rng=RandomState(13), parallel=False, **kwargs
        )
        parallel = distributed_importance_sampling(
            model, OBSERVATION, rng=RandomState(13), parallel=True, **kwargs
        )
        assert parallel.extract("a").mean == pytest.approx(
            sequential.extract("a").mean, abs=1e-9
        )
        assert sequential.effective_sample_size() > 0

    def test_parallel_inference_leaves_grad_mode_enabled(self, lockstep_engine):
        from repro.tensor import is_grad_enabled

        model, engine = lockstep_engine
        for seed in range(5):
            distributed_importance_sampling(
                model, OBSERVATION, num_traces=8, num_ranks=4, batch_size=2,
                network=engine.network, rng=RandomState(seed), parallel=True,
            )
            assert is_grad_enabled()

    def test_repeated_calls_with_shared_rng_draw_fresh_streams(self, lockstep_engine):
        model, engine = lockstep_engine
        shared = RandomState(14)
        first = distributed_importance_sampling(
            model, OBSERVATION, num_traces=6, num_ranks=2, batch_size=3,
            network=engine.network, rng=shared,
        )
        second = distributed_importance_sampling(
            model, OBSERVATION, num_traces=6, num_ranks=2, batch_size=3,
            network=engine.network, rng=shared,
        )
        first_values = [t["a"] for t in first.values]
        second_values = [t["a"] for t in second.values]
        assert not np.allclose(first_values, second_values)
