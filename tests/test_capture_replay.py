"""Tests of request capture and deterministic replay.

The acceptance contract: a capture file records enough (observations, stream
snapshots, admission order, model/network version) that replaying it through
a fresh service reproduces every completed posterior *bit-identically* —
equal sample values, equal log-weights, equal generator trajectories — across
backends and regardless of how the original run interleaved requests.
"""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import (
    PosteriorService,
    ReplayMismatch,
    RequestCapture,
    load_capture,
    posterior_digest,
    replay_capture,
)
from tests.test_batched_inference import OBSERVATION, lockstep_program

OBSERVATION_B = {"obs": np.array([0.2, -0.4, 0.8, 0.6])}


@pytest.fixture(scope="module")
def served_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


def make_service(model, engine, **kwargs):
    defaults = dict(observe_key="obs", max_batch=32, max_latency=0.01, num_workers=2)
    defaults.update(kwargs)
    return PosteriorService(model, engine.network, **defaults)


class TestRandomStateSnapshot:
    def test_snapshot_restores_draws_and_spawn_lineage(self):
        original = RandomState(seed=123, name="request")
        snapshot = original.snapshot()
        draws = [original.generator.random() for _ in range(4)]
        child = original.spawn((5, 0))
        restored = RandomState.restore(snapshot)
        assert [restored.generator.random() for _ in range(4)] == draws
        # spawn derives children from the *seed identity*, not the generator
        # state — restore must preserve both halves of the contract.
        restored_child = restored.spawn((5, 0))
        assert restored_child.generator.integers(0, 2**31) == child.generator.integers(0, 2**31)

    def test_snapshot_roundtrips_tuple_seeds(self):
        parent = RandomState(seed=7, name="parent")
        child = parent.spawn((3, 1))
        snapshot = child.snapshot()
        # Tuple seeds survive the JSON round trip as lists; restore re-tuples.
        snapshot["seed"] = list(snapshot["seed"])
        restored = RandomState.restore(snapshot)
        assert restored.generator.random() == child.generator.random()


class TestPosteriorDigest:
    def test_digest_is_deterministic_and_sensitive(self, served_engine):
        model, engine = served_engine
        from repro.ppl.inference.batched import batched_importance_sampling

        same = [
            batched_importance_sampling(
                model, OBSERVATION, num_traces=8, batch_size=8,
                network=engine.network, rng=RandomState(3),
            )
            for _ in range(2)
        ]
        other = batched_importance_sampling(
            model, OBSERVATION, num_traces=8, batch_size=8,
            network=engine.network, rng=RandomState(4),
        )
        assert posterior_digest(same[0]) == posterior_digest(same[1])
        assert posterior_digest(same[0]) != posterior_digest(other)


class TestCaptureFile:
    def test_capture_records_header_admissions_and_outcomes(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        with make_service(model, engine, capture=path) as service:
            service.posterior(OBSERVATION, num_traces=6, seed=11, use_cache=False, timeout=60)
            service.posterior(OBSERVATION_B, num_traces=4, seed=12, use_cache=False, timeout=60)
        capture = load_capture(path)
        assert capture["header"]["model_id"] == service._model_id
        assert [a["order"] for a in capture["admissions"]] == [0, 1]
        assert [a["num_traces"] for a in capture["admissions"]] == [6, 4]
        for order in (0, 1):
            assert capture["outcomes"][order]["status"] == "completed"
            assert len(capture["outcomes"][order]["digest"]) == 64
        decoded = capture["admissions"][0]["observation"]["obs"]
        restored = np.frombuffer(
            __import__("base64").b64decode(decoded["data"]),
            dtype=np.dtype(decoded["dtype"]),
        ).reshape(decoded["shape"])
        assert np.array_equal(restored, np.asarray(OBSERVATION["obs"]))

    def test_cache_hits_and_internal_refreshes_are_not_captured(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        with make_service(model, engine, capture=path) as service:
            service.posterior(OBSERVATION, num_traces=6, seed=1, timeout=60)
            hit = service.posterior(OBSERVATION, num_traces=6, seed=2, timeout=60)
            assert hit.cached
        capture = load_capture(path)
        assert len(capture["admissions"]) == 1  # the hit never reached admission

    def test_failed_requests_record_their_error(self, tmp_path):
        def broken_program():
            raise RuntimeError("simulator exploded")

        path = str(tmp_path / "capture.jsonl")
        model = FunctionModel(broken_program, name="broken")
        with PosteriorService(model, None, num_workers=1, capture=path,
                              max_latency=0.001) as service:
            future = service.submit({"obs": 1.0}, num_traces=2, use_cache=False)
            with pytest.raises(RuntimeError):
                future.result(timeout=30)
        capture = load_capture(path)
        outcome = capture["outcomes"][0]
        assert outcome["status"] == "failed"
        assert "simulator exploded" in outcome["error"]


class TestReplay:
    def _capture_run(self, model, engine, path, backend="thread", seeds=(11, 12, 13)):
        with make_service(model, engine, capture=path, backend=backend) as service:
            futures = []
            for index, seed in enumerate(seeds):
                observation = OBSERVATION if index % 2 == 0 else OBSERVATION_B
                futures.append(
                    service.submit(observation, num_traces=8, seed=seed, use_cache=False)
                )
            return [future.result(timeout=120) for future in futures]

    def test_replay_is_bit_identical_thread_backend(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        self._capture_run(model, engine, path)
        with make_service(model, engine) as replay_service:
            report = replay_capture(path, replay_service)
        assert report.ok
        assert report.total == report.replayed == report.matched == 3
        assert report.skipped == 0

    def test_replay_is_bit_identical_through_the_process_backend(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        # Captured on threads, replayed on processes: per-trace streams are
        # derived in the parent at admission, so the digests must still agree.
        self._capture_run(model, engine, path, seeds=(21, 22))
        with make_service(model, engine, backend="process") as replay_service:
            report = replay_capture(path, replay_service)
        assert report.ok
        assert report.matched == 2

    def test_replay_detects_divergence(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        self._capture_run(model, engine, path, seeds=(31,))
        # Corrupt the recorded digest: replay must refuse to call that a match.
        lines = open(path).read().splitlines()
        import json

        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("kind") == "outcome":
                record["digest"] = "0" * 64
            doctored.append(json.dumps(record))
        open(path, "w").write("\n".join(doctored) + "\n")
        with make_service(model, engine) as replay_service:
            with pytest.raises(ReplayMismatch):
                replay_capture(path, replay_service)
            lenient = replay_capture(path, replay_service, verify=False)
        assert lenient.mismatches == [0]
        assert not lenient.ok

    def test_replay_skips_requests_that_never_completed(self, served_engine, tmp_path):
        model, engine = served_engine
        path = str(tmp_path / "capture.jsonl")
        capture = RequestCapture(path)
        capture.write_header("m", 0)
        order = capture.record_admission(
            0, OBSERVATION, 4, RandomState(5).snapshot(), 0
        )
        capture.record_outcome(order, "failed", error="WorkerCrashed: boom")
        capture.close()
        with make_service(model, engine) as replay_service:
            report = replay_capture(path, replay_service)
        assert report.ok
        assert report.skipped == 1 and report.matched == 0
