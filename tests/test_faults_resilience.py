"""Tests of the fault-injection harness and the serving resilience layer.

Covers the robustness acceptance contract: fault plans are reproducible from
their seed alone (and picklable into worker processes); the hooks are inert
without an installed plan; transient cohort failures are retried with the
request's admission-time streams rewound (so seeded equivalence survives a
retry bit-for-bit); the circuit breaker fails fresh submissions fast with a
``ServingError`` while cached entries keep being served; crash storms demote
the process backend to threads without shedding; and shutdown racing a worker
crash never leaves a future unresolved.
"""

import os
import pickle
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.inference.batched import (
    LockstepStallError,
    TraceJob,
    _LockstepCoordinator,
    batched_importance_sampling,
    per_trace_rngs,
)
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import (
    BreakerOpen,
    CircuitBreaker,
    PoolStopped,
    PosteriorService,
    ProcessCohortPool,
    RetryPolicy,
    ServiceResilience,
    ServingError,
    is_transient,
)
from repro.serving.procpool import WorkerCrashed
from repro.testing import FaultPlan, FaultRule, InjectedFault, activate, fault_point, faults
from tests.test_batched_inference import OBSERVATION, lockstep_program


@pytest.fixture(scope="module")
def served_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


def make_service(model, engine, **kwargs):
    defaults = dict(observe_key="obs", max_batch=32, max_latency=0.01, num_workers=2)
    defaults.update(kwargs)
    return PosteriorService(model, engine.network if engine else None, **defaults)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.clear()


# ---------------------------------------------------------------------------
# Fault plan unit semantics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_disabled_hook_returns_none(self):
        assert faults.active() is None
        assert fault_point("anywhere", anything=1) is None
        assert faults.perform("anywhere") is None
        assert faults.injected_counts() == {}

    def test_at_every_probability_and_limit(self):
        plan = FaultPlan(
            [
                FaultRule(site="s", kind="error", at=2),
                FaultRule(site="t", kind="delay", every=3, delay=0.0, limit=2),
            ],
            seed=1,
        )
        verdicts = [plan.decide("s") for _ in range(5)]
        assert [v.kind if v else None for v in verdicts] == [None, None, "error", None, None]
        # every=3 fires on occurrences 2, 5, 8, ... but limit=2 caps it.
        t_verdicts = [plan.decide("t") for _ in range(12)]
        fired_at = [i for i, v in enumerate(t_verdicts) if v is not None]
        assert fired_at == [2, 5]
        assert plan.fired_counts() == {"s/error": 1, "t/delay": 2}
        assert plan.total_fired() == 3

    def test_same_seed_same_schedule_regardless_of_interleaving(self):
        def decisions(plan, order):
            outcome = {}
            for site in order:
                outcome.setdefault(site, []).append(plan.decide(site) is not None)
            return outcome

        rule = lambda site: FaultRule(site=site, kind="error", probability=0.4)
        a = decisions(FaultPlan([rule("x"), rule("y")], seed=9), ["x", "y"] * 10)
        # Interleave differently: per-site occurrence counters make the
        # verdict for the Nth call at a site independent of other sites.
        b = decisions(FaultPlan([rule("x"), rule("y")], seed=9), ["x"] * 10 + ["y"] * 10)
        assert a == b
        c = decisions(FaultPlan([rule("x"), rule("y")], seed=10), ["x", "y"] * 10)
        assert a != c  # different seed, different schedule (w.h.p. for p=0.4)

    def test_plans_pickle_with_schedule_position(self):
        plan = FaultPlan([FaultRule(site="s", kind="crash", at=1)], seed=3)
        assert plan.decide("s") is None
        clone = pickle.loads(pickle.dumps(plan))
        # The clone continues from the parent's occurrence counter: the next
        # call is occurrence 1 for both.
        assert clone.decide("s").kind == "crash"
        assert plan.decide("s").kind == "crash"

    def test_randomized_plans_are_pure_functions_of_seed(self):
        a, b = FaultPlan.randomized(42), FaultPlan.randomized(42)
        assert a.rules == b.rules
        assert a.seed == b.seed

    def test_activate_restores_previous_plan(self):
        outer = FaultPlan([], seed=1)
        faults.install(outer)
        with activate(FaultPlan([], seed=2)) as inner:
            assert faults.active() is inner
        assert faults.active() is outer
        faults.clear()

    def test_perform_raises_injected_fault(self):
        with activate(FaultPlan([FaultRule(site="s", kind="error", at=0)], seed=0)):
            with pytest.raises(InjectedFault):
                faults.perform("s")
        assert is_transient(InjectedFault("x"))

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="frobnicate", at=0)
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="error")  # no trigger


# ---------------------------------------------------------------------------
# Retry policy + circuit breaker units
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.5)  # capped

    def test_jitter_is_deterministic_and_centred(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert policy.delay(1, key=7) == policy.delay(1, key=7)
        assert policy.delay(1, key=7) != policy.delay(1, key=8)
        assert 0.075 <= policy.delay(1, key=7) <= 0.125


class TestCircuitBreaker:
    def test_threshold_recovery_and_probe(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=2, recovery_time=10.0, clock=lambda: clock["now"])
        assert breaker.allow() and not breaker.blocking()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open" and breaker.blocking() and not breaker.allow()
        clock["now"] = 11.0
        assert breaker.allow()  # this caller is the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe per window
        breaker.record_failure()
        assert breaker.state == "open"  # failed probe reopens
        clock["now"] = 22.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.opens == 2

    def test_transition_callback_feeds_metrics(self):
        seen = []
        breaker = CircuitBreaker(failure_threshold=1, on_transition=lambda old, new: seen.append(new))
        breaker.record_failure()
        breaker.record_success()
        assert seen == ["open", "closed"]


# ---------------------------------------------------------------------------
# Service-level resilience (thread backend)
# ---------------------------------------------------------------------------


class TestServiceRetries:
    def test_transient_cohort_failures_are_retried_to_the_same_posterior(self, served_engine):
        model, engine = served_engine
        # The first two cohort executions fail with an injected transient
        # fault; the retry rewinds each trace stream to its admission-time
        # snapshot, so the final posterior is bit-identical to a clean run.
        plan = FaultPlan([FaultRule(site="workers.cohort", kind="error", at=0, limit=1),
                          FaultRule(site="workers.cohort", kind="error", at=1, limit=1)], seed=0)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
            CircuitBreaker(failure_threshold=50),
        )
        with activate(plan):
            with make_service(model, engine, num_workers=1, resilience=resilience) as service:
                result = service.posterior(OBSERVATION, num_traces=12, seed=21,
                                           use_cache=False, timeout=60)
                stats = service.stats()
        assert stats["retries"] >= 1
        assert stats["faults_injected"] == plan.total_fired() >= 1
        assert stats["faults"]["workers.cohort/error"] >= 1
        direct = batched_importance_sampling(
            model, OBSERVATION, num_traces=12, batch_size=64,
            network=engine.network, rng=RandomState(21),
        )
        for latent in ("a", "b", "c"):
            assert result.posterior.extract(latent).mean == pytest.approx(
                direct.extract(latent).mean, abs=1e-12
            )
        assert result.posterior.log_evidence == pytest.approx(direct.log_evidence, abs=1e-12)

    def test_exhausted_retry_budget_fails_the_future(self, served_engine):
        model, engine = served_engine
        plan = FaultPlan([FaultRule(site="workers.cohort", kind="error", every=1)], seed=0)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=2, base_delay=0.005, jitter=0.0),
            CircuitBreaker(failure_threshold=100),
        )
        with activate(plan):
            with make_service(model, engine, num_workers=1, resilience=resilience) as service:
                future = service.submit(OBSERVATION, num_traces=4, seed=1, use_cache=False)
                with pytest.raises(InjectedFault):
                    future.result(timeout=30)
                assert service.stats()["failed"] == 1

    def test_non_transient_failures_are_not_retried(self, served_engine):
        model, engine = served_engine
        resilience = ServiceResilience(RetryPolicy(max_attempts=5, base_delay=0.01))

        def broken_program():
            raise ValueError("deterministic model bug")

        with make_service(FunctionModel(broken_program, name="broken"), None,
                          num_workers=1, resilience=resilience) as service:
            future = service.submit({"obs": 1.0}, num_traces=2, use_cache=False)
            with pytest.raises(ValueError, match="deterministic model bug"):
                future.result(timeout=30)
        assert resilience.retries_dispatched == 0

    def test_stop_fails_requests_waiting_out_a_backoff(self, served_engine):
        model, engine = served_engine
        plan = FaultPlan([FaultRule(site="workers.cohort", kind="error", every=1)], seed=0)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=3, base_delay=30.0, jitter=0.0),  # parked well past the stop
            CircuitBreaker(failure_threshold=100),
        )
        with activate(plan):
            service = make_service(model, engine, num_workers=1, resilience=resilience).start()
            future = service.submit(OBSERVATION, num_traces=4, seed=1, use_cache=False)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and resilience.stats()["retries_pending"] == 0:
                time.sleep(0.01)
            assert resilience.stats()["retries_pending"] == 1
            service.stop(drain=True)
        with pytest.raises(ServingError, match="stopped while retrying"):
            future.result(timeout=10)


class TestBreaker:
    def _storm_service(self, model, engine, **overrides):
        defaults = dict(
            retry=RetryPolicy(max_attempts=0),
            breaker=CircuitBreaker(failure_threshold=1, recovery_time=60.0),
        )
        defaults.update(overrides)
        resilience = ServiceResilience(defaults["retry"], defaults["breaker"])
        return make_service(model, engine, num_workers=1, resilience=resilience), resilience

    def test_open_breaker_fails_fresh_submissions_with_serving_error(self, served_engine):
        model, engine = served_engine
        plan = FaultPlan([FaultRule(site="workers.cohort", kind="error", every=1)], seed=0)
        service, resilience = self._storm_service(model, engine)
        with activate(plan):
            with service:
                first = service.submit(OBSERVATION, num_traces=4, seed=1, use_cache=False)
                with pytest.raises(InjectedFault):
                    first.result(timeout=30)
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and resilience.breaker.state != "open":
                    time.sleep(0.01)
                assert resilience.breaker.state == "open"
                with pytest.raises(BreakerOpen):
                    service.submit(OBSERVATION, num_traces=4, seed=2, use_cache=False)
                # BreakerOpen is a ServingError: clients catching the serving
                # tier's base error see degradation, not a new exception type.
                assert issubclass(BreakerOpen, ServingError)
                stats = service.stats()
                assert stats["breaker_state"] == "open"
                assert stats["breaker_opens"] >= 1

    def test_open_breaker_keeps_serving_cached_entries(self, served_engine):
        model, engine = served_engine
        # Populate the cache with a short TTL, then open the breaker and
        # verify stale entries still answer (degraded stale serving) while
        # fresh observations fail fast.
        service, resilience = self._storm_service(model, engine)
        service.cache.ttl = 0.05
        plan = FaultPlan([FaultRule(site="workers.cohort", kind="error", every=1)], seed=0)
        with service:
            warm = service.posterior(OBSERVATION, num_traces=4, seed=1, timeout=60)
            assert not warm.cached
            with activate(plan):
                failing = service.submit(OBSERVATION, num_traces=8, seed=2, use_cache=False)
                with pytest.raises(InjectedFault):
                    failing.result(timeout=30)
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and resilience.breaker.state != "open":
                    time.sleep(0.01)
                time.sleep(0.06)  # let the cached entry go stale
                served = service.posterior(OBSERVATION, num_traces=4, timeout=10)
                assert served.cached
                with pytest.raises(BreakerOpen):
                    service.submit({"obs": np.array([9.0, 9.0, 9.0, 9.0])},
                                   num_traces=4, use_cache=False)
                stats = service.stats()
        assert stats["degraded_stale_served"] >= 1
        # Degraded mode must not have queued a revalidation behind the storm.
        assert stats["revalidations"] == 0


class TestAdmissionBursts:
    def test_injected_queue_full_bursts_take_the_overload_path(self, served_engine):
        model, engine = served_engine
        from repro.serving import ServiceOverloaded

        plan = FaultPlan([FaultRule(site="service.admit", kind="reject", every=1, limit=2)], seed=0)
        with activate(plan):
            with make_service(model, engine) as service:
                for _ in range(2):
                    with pytest.raises(ServiceOverloaded):
                        service.submit(OBSERVATION, num_traces=4, use_cache=False)
                # The burst is bounded by the rule limit: service recovers.
                ok = service.posterior(OBSERVATION, num_traces=4, use_cache=False, timeout=60)
                assert ok.num_traces == 4
                stats = service.stats()
        assert stats["rejected_overload"] == 2
        assert stats["faults"]["service.admit/reject"] == 2


# ---------------------------------------------------------------------------
# Process backend: crash injection, demotion, shutdown races, probes
# ---------------------------------------------------------------------------


def slow_program():
    import repro.ppl as ppl
    from repro.distributions import Normal, Uniform

    a = ppl.sample(Uniform(-1.0, 1.0), name="a", address="slow_a")
    time.sleep(0.25)
    ppl.observe(Normal(a, 0.5), name="obs")
    return a


SLOW_OBSERVATION = {"obs": np.array(0.3)}


class TestProcessChaos:
    def test_injected_dispatch_crash_is_requeued_by_the_pool(self, served_engine):
        model, engine = served_engine
        plan = FaultPlan(
            [FaultRule(site="procpool.dispatch", kind="crash", at=0, limit=1)], seed=0
        )
        with activate(plan):
            with make_service(model, engine, backend="process", num_workers=2,
                              max_requeues=2) as service:
                service.workers.health_interval = 0.02
                result = service.posterior(OBSERVATION, num_traces=8, seed=5,
                                           use_cache=False, timeout=120)
                stats = service.stats()
        assert stats["workers"]["worker_crashes"] >= 1
        assert stats["faults"]["procpool.dispatch/crash"] == 1
        direct = batched_importance_sampling(
            model, OBSERVATION, num_traces=8, batch_size=64,
            network=engine.network, rng=RandomState(5),
        )
        assert result.posterior.extract("a").mean == pytest.approx(
            direct.extract("a").mean, abs=1e-12
        )

    def test_crash_storm_demotes_to_thread_backend_without_shedding(self, served_engine):
        model, engine = served_engine
        # Every dispatch to the process pool kills its worker: the only way
        # this request completes is the breaker-triggered demotion to threads.
        plan = FaultPlan([FaultRule(site="procpool.dispatch", kind="crash", every=1)], seed=0)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=10, base_delay=0.02, jitter=0.0),
            CircuitBreaker(failure_threshold=1, recovery_time=0.05),
            demote_after=1,
            probe_interval=0.02,
        )
        with activate(plan):
            with make_service(model, engine, backend="process", num_workers=1,
                              max_requeues=0, resilience=resilience) as service:
                service.workers.health_interval = 0.02
                result = service.posterior(OBSERVATION, num_traces=8, seed=9,
                                           use_cache=False, timeout=120)
                stats = service.stats()
                assert service.backend == "thread"
        assert stats["demotions"] == 1
        assert stats["resilience"]["demoted"] is True
        direct = batched_importance_sampling(
            model, OBSERVATION, num_traces=8, batch_size=64,
            network=engine.network, rng=RandomState(9),
        )
        for latent in ("a", "b", "c"):
            assert result.posterior.extract(latent).mean == pytest.approx(
                direct.extract(latent).mean, abs=1e-12
            )

    def test_shutdown_drain_racing_worker_crash_resolves_every_future(self):
        model = FunctionModel(slow_program, name="slow")
        service = PosteriorService(
            model, None, num_workers=1, backend="process", max_requeues=1,
            max_latency=0.001,
        ).start()
        service.workers.health_interval = 0.02
        future = service.submit(SLOW_OBSERVATION, num_traces=2, seed=3, use_cache=False)
        deadline = time.monotonic() + 5.0
        victim = None
        while time.monotonic() < deadline and victim is None:
            for worker in service.workers._workers:
                if worker.outstanding and worker.process.is_alive():
                    victim = worker
            time.sleep(0.01)
        assert victim is not None
        # Kill the busy worker and immediately drain-shutdown: the requeued
        # shard must either complete during the drain or fail loudly — the
        # future is resolved either way, never abandoned.
        os.kill(victim.process.pid, signal.SIGKILL)
        service.shutdown(drain=True)
        assert future.done()
        try:
            served = future.result(timeout=0)
            assert served.num_traces == 2
        except (WorkerCrashed, ServingError):
            pass  # loud failure is an acceptable outcome; hanging is not

    def test_pool_stopped_submit_error_is_transient(self):
        model = FunctionModel(lockstep_program, name="lockstep")
        pool = ProcessCohortPool(model, None, num_workers=1)
        with pytest.raises(PoolStopped) as excinfo:
            pool.submit([], lambda *args: None)
        assert is_transient(excinfo.value)
        assert isinstance(excinfo.value, ServingError)

    def test_probe_respawns_idle_dead_workers(self):
        model = FunctionModel(lockstep_program, name="lockstep")
        pool = ProcessCohortPool(model, None, num_workers=2)
        pool.start()
        try:
            victim = pool._workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            victim.process.join(timeout=5.0)
            report = pool.probe()
            assert report["respawned"] == 1
            assert all(worker.process.is_alive() for worker in pool._workers)
        finally:
            pool.stop(drain=False)


# ---------------------------------------------------------------------------
# Lockstep stall detection
# ---------------------------------------------------------------------------


class TestLockstepStall:
    def test_stalled_round_raises_diagnostic_error(self):
        coordinator = _LockstepCoordinator(
            session=None, num_workers=2, stall_timeout=0.1, poll_interval=0.02
        )
        # Worker 0 posts, worker 1 never does (and there is no thread record
        # to declare it dead): the round must fail loudly, naming slot 1.
        coordinator._post(("done", 0, None, None, None))
        with pytest.raises(LockstepStallError, match=r"waiting on slots \{1:"):
            coordinator.serve(threads=None)

    def test_stall_releases_blocked_workers(self):
        coordinator = _LockstepCoordinator(
            session=None, num_workers=2, stall_timeout=0.1, poll_interval=0.02
        )
        released = []

        def blocked_worker():
            released.append(coordinator.request(0, "addr", None, None))

        thread = threading.Thread(target=blocked_worker, daemon=True)
        thread.start()
        with pytest.raises(LockstepStallError):
            coordinator.serve(threads=None)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert released == [None]  # prior fallback, not a hang


# ---------------------------------------------------------------------------
# PPX: bounded connect retry + client reconnect-with-handshake
# ---------------------------------------------------------------------------


class TestTransportRetry:
    def _refused_port(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_connect_tcp_gives_up_after_bounded_attempts(self):
        from repro.ppx.transport import connect_tcp

        port = self._refused_port()
        started = time.monotonic()
        with pytest.raises(ConnectionRefusedError, match="attempt"):
            connect_tcp("127.0.0.1", port, attempts=3, backoff=0.01)
        assert time.monotonic() - started < 5.0

    def test_connect_tcp_outwaits_a_late_listener(self):
        from repro.ppx.transport import connect_tcp, listen_tcp

        server, port = listen_tcp()
        server.close()  # refused until the real listener binds below

        def late_bind():
            time.sleep(0.15)
            late = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            late.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            late.bind(("127.0.0.1", port))
            late.listen(1)
            conn, _ = late.accept()
            conn.close()
            late.close()

        binder = threading.Thread(target=late_bind, daemon=True)
        binder.start()
        transport = connect_tcp("127.0.0.1", port, attempts=8, backoff=0.05)
        transport.close()
        binder.join(timeout=5.0)

    def test_injected_disconnect_closes_the_socket(self):
        from repro.ppx.messages import Handshake
        from repro.ppx.transport import SocketTransport, connect_tcp, listen_tcp

        server, port = listen_tcp()
        accepted = {}

        def accept_one():
            conn, _ = server.accept()
            accepted["transport"] = SocketTransport(conn)

        acceptor = threading.Thread(target=accept_one, daemon=True)
        acceptor.start()
        transport = connect_tcp("127.0.0.1", port)
        acceptor.join(timeout=5.0)
        plan = FaultPlan([FaultRule(site="transport.send", kind="disconnect", at=0)], seed=0)
        with activate(plan):
            with pytest.raises(ConnectionError, match="injected disconnect"):
                transport.send(Handshake())
        accepted["transport"].close()
        server.close()


class TestClientReconnect:
    def _ppl_side(self, server, script):
        """Accept connections and run ``script(transport, generation)`` per accept."""
        from repro.ppx.transport import SocketTransport

        def run():
            for generation in range(script.generations):
                conn, _ = server.accept()
                transport = SocketTransport(conn)
                script(transport, generation)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_client_reconnects_and_rehandshakes_after_drop(self):
        from repro.ppx.messages import (
            Handshake,
            HandshakeResult,
            Run,
            RunResult,
            ShutdownRequest,
            ShutdownResult,
        )
        from repro.ppx.transport import connect_tcp, listen_tcp

        server, port = listen_tcp()
        server.listen(2)
        handshakes = []

        def script(transport, generation):
            message = transport.receive()
            assert isinstance(message, Handshake)
            handshakes.append(generation)
            transport.send(HandshakeResult(accepted=True))
            if generation == 0:
                transport.send(Run(observation=None))
                reply = transport.receive()
                assert isinstance(reply, RunResult)
                transport.close()  # drop the connection mid-session
            else:
                transport.send(ShutdownRequest())
                assert isinstance(transport.receive(), ShutdownResult)
                transport.close()

        script.generations = 2
        ppl_thread = self._ppl_side(server, script)

        from repro.ppx.client import SimulatorClient

        def simulator(client, observation):
            return 1.0

        client = SimulatorClient(
            connect_tcp("127.0.0.1", port),
            simulator,
            connect=lambda: connect_tcp("127.0.0.1", port, attempts=5, backoff=0.02),
            max_reconnects=2,
        )
        client.serve_forever()  # returns cleanly after the post-reconnect shutdown
        ppl_thread.join(timeout=10.0)
        assert client.reconnects == 1
        assert handshakes == [0, 1]  # one handshake per connection generation
        server.close()

    def test_without_factory_disconnect_propagates(self):
        from repro.ppx.client import SimulatorClient
        from repro.ppx.messages import Handshake, HandshakeResult
        from repro.ppx.transport import SocketTransport, connect_tcp, listen_tcp

        server, port = listen_tcp()

        def script(transport, generation):
            assert isinstance(transport.receive(), Handshake)
            transport.send(HandshakeResult(accepted=True))
            transport.close()

        script.generations = 1
        ppl_thread = self._ppl_side(server, script)
        client = SimulatorClient(connect_tcp("127.0.0.1", port), lambda c, o: 0.0)
        with pytest.raises((ConnectionError, OSError)):
            client.serve_forever()
        ppl_thread.join(timeout=10.0)
        server.close()
