"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, nn, optim


def make_regression(seed=0, n=64):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3))
    true_w = np.array([[1.5, -2.0, 0.5]])
    y = x @ true_w.T + 0.3
    return x, y


def fit(optimizer_factory, iterations=300, seed=0):
    x, y = make_regression(seed)
    layer = nn.Linear(3, 1)
    opt = optimizer_factory(layer)
    for _ in range(iterations):
        opt.zero_grad()
        loss = F.mse_loss(layer(Tensor(x)), Tensor(y))
        loss.backward()
        opt.step()
    return float(loss.item()), layer


class TestSGD:
    def test_plain_sgd_converges(self):
        loss, _ = fit(lambda m: optim.SGD(m.parameters(), lr=0.05), iterations=500)
        assert loss < 1e-3

    def test_momentum_speeds_convergence(self):
        loss_plain, _ = fit(lambda m: optim.SGD(m.parameters(), lr=0.01), iterations=100)
        loss_momentum, _ = fit(lambda m: optim.SGD(m.parameters(), lr=0.01, momentum=0.9), iterations=100)
        assert loss_momentum < loss_plain

    def test_weight_decay_shrinks_weights(self):
        _, no_decay = fit(lambda m: optim.SGD(m.parameters(), lr=0.05), iterations=200)
        _, decay = fit(lambda m: optim.SGD(m.parameters(), lr=0.05, weight_decay=0.5), iterations=200)
        assert np.linalg.norm(decay.weight.data) < np.linalg.norm(no_decay.weight.data)

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=-1.0)

    def test_skips_parameters_without_gradients(self):
        layer = nn.Linear(2, 2)
        opt = optim.SGD(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        opt.step()  # no gradients computed
        assert np.allclose(layer.weight.data, before)


class TestAdam:
    def test_adam_converges(self):
        loss, layer = fit(lambda m: optim.Adam(m.parameters(), lr=0.05), iterations=400)
        assert loss < 1e-4
        assert np.allclose(layer.weight.data, [[1.5, -2.0, 0.5]], atol=0.02)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            optim.Adam([], lr=0.1, betas=(1.0, 0.9))

    def test_named_parameter_construction(self):
        layer = nn.Linear(2, 2)
        opt = optim.Adam(list(layer.named_parameters()), lr=0.1)
        assert opt._names == ["weight", "bias"]

    def test_add_param_group_registers_new_parameters(self):
        layer = nn.Linear(2, 2)
        opt = optim.Adam(layer.parameters(), lr=0.1)
        extra = nn.Linear(2, 2)
        opt.add_param_group(extra.parameters(), ["extra.weight", "extra.bias"])
        assert len(opt.params) == 4

    def test_step_count_increments(self):
        layer = nn.Linear(1, 1)
        opt = optim.Adam(layer.parameters(), lr=0.1)
        loss = F.mse_loss(layer(Tensor(np.ones((2, 1)))), Tensor(np.zeros((2, 1))))
        loss.backward()
        opt.step()
        opt.step()
        assert opt.step_count == 2


class TestLARC:
    def test_larc_wraps_adam_and_converges(self):
        # LARC's layer-wise trust ratio slows tiny (1-element) layers such as
        # the bias here, so the tolerance is looser than for plain Adam.
        loss, _ = fit(lambda m: optim.LARC(optim.Adam(m.parameters(), lr=0.05)), iterations=500)
        assert loss < 0.2

    def test_larc_wraps_sgd(self):
        loss, _ = fit(lambda m: optim.LARC(optim.SGD(m.parameters(), lr=0.5), trust_coefficient=0.1), iterations=500)
        assert loss < 0.5

    def test_larc_clip_limits_effective_rate(self):
        # With clipping, the per-layer effective LR never exceeds the global LR:
        # a single step moves parameters by at most lr * ||update||.
        layer = nn.Linear(4, 4)
        opt = optim.LARC(optim.SGD(layer.parameters(), lr=0.01), trust_coefficient=100.0, clip=True)
        before = layer.weight.data.copy()
        loss = F.mse_loss(layer(Tensor(np.ones((2, 4)))), Tensor(np.zeros((2, 4))))
        loss.backward()
        grad_norm = np.linalg.norm(layer.weight.grad)
        opt.step()
        step_norm = np.linalg.norm(layer.weight.data - before)
        assert step_norm <= 0.01 * grad_norm + 1e-12

    def test_larc_exposes_lr_property(self):
        layer = nn.Linear(2, 2)
        larc = optim.LARC(optim.Adam(layer.parameters(), lr=0.1))
        assert larc.lr == pytest.approx(0.1)
        larc.lr = 0.01
        assert larc.base.lr == pytest.approx(0.01)

    def test_larc_add_param_group(self):
        layer = nn.Linear(2, 2)
        larc = optim.LARC(optim.Adam(layer.parameters(), lr=0.1))
        larc.add_param_group(nn.Linear(2, 2).parameters())
        assert len(larc.params) == 4


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return optim.SGD(nn.Linear(1, 1).parameters(), lr=lr)

    def test_constant(self):
        opt = self._optimizer(0.5)
        sched = optim.ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_multistep_decay(self):
        opt = self._optimizer(1.0)
        sched = optim.MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_polynomial_decay_order2_matches_formula(self):
        opt = self._optimizer(5.7e-4)
        sched = optim.PolynomialDecayLR(opt, total_steps=100, end_lr=2e-5, power=2.0)
        for _ in range(50):
            sched.step()
        expected = 2e-5 + (5.7e-4 - 2e-5) * (1 - 0.5) ** 2
        assert opt.lr == pytest.approx(expected)
        for _ in range(100):
            sched.step()
        assert opt.lr == pytest.approx(2e-5)

    def test_polynomial_decay_is_monotone(self):
        opt = self._optimizer(1e-3)
        sched = optim.PolynomialDecayLR(opt, total_steps=20, end_lr=1e-5, power=1.0)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_polynomial_requires_positive_steps(self):
        with pytest.raises(ValueError):
            optim.PolynomialDecayLR(self._optimizer(), total_steps=0)

    def test_current_lr_property(self):
        opt = self._optimizer(0.3)
        sched = optim.ConstantLR(opt)
        sched.step()
        assert sched.current_lr == pytest.approx(0.3)


class TestLearningRateScaling:
    def test_modes(self):
        base = 1e-3
        assert optim.scale_learning_rate(base, 4, "linear") == pytest.approx(4e-3)
        assert optim.scale_learning_rate(base, 4, "sqrt") == pytest.approx(2e-3)
        assert optim.scale_learning_rate(base, 4, "none") == pytest.approx(base)
        subsqrt = optim.scale_learning_rate(base, 4, "subsqrt")
        assert base < subsqrt < optim.scale_learning_rate(base, 4, "sqrt")

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optim.scale_learning_rate(1e-3, 0, "linear")
        with pytest.raises(ValueError):
            optim.scale_learning_rate(1e-3, 4, "bogus")
