"""Tests for the IC neural components: embeddings, proposals, inference network."""

import os

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.distributions import Categorical, Normal, Uniform
from repro.ppl import FunctionModel, sample, observe
from repro.ppl.nn import (
    AddressEmbedding,
    InferenceNetwork,
    ObservationEmbedding3DCNN,
    ObservationEmbeddingFC,
    ProposalCategorical,
    ProposalNormalMixture,
    SampleEmbedding,
    collect_address_statistics,
    make_proposal_layer,
    pregenerate_layers,
)
from repro.tensor import Tensor
from tests.conftest import mixed_program


class TestObservationEmbeddings:
    def test_3dcnn_output_shape(self):
        embedding = ObservationEmbedding3DCNN((6, 7, 7), embedding_dim=12, channels=(4, 8))
        out = embedding(np.zeros((3, 6, 7, 7)))
        assert out.shape == (3, 12)

    def test_3dcnn_accepts_single_observation(self):
        embedding = ObservationEmbedding3DCNN((4, 5, 5), embedding_dim=8, channels=(4,))
        assert embedding(np.zeros((4, 5, 5))).shape == (1, 8)

    def test_3dcnn_rejects_bad_rank(self):
        embedding = ObservationEmbedding3DCNN((4, 5, 5), embedding_dim=8, channels=(4,))
        with pytest.raises(ValueError):
            embedding(np.zeros((2, 2)))

    def test_3dcnn_gradients_flow(self):
        embedding = ObservationEmbedding3DCNN((4, 5, 5), embedding_dim=6, channels=(4,))
        out = embedding(np.random.default_rng(0).standard_normal((2, 4, 5, 5)))
        out.sum().backward()
        assert all(p.grad is not None for p in embedding.parameters())

    def test_paper_architecture_structure(self):
        embedding = ObservationEmbedding3DCNN.paper_architecture(embedding_dim=256)
        assert embedding.observation_shape == (20, 35, 35)
        assert embedding.embedding_dim == 256
        # five conv layers, as in Section 4.3
        from repro.tensor.nn import Conv3d

        convs = [m for m in embedding.modules() if isinstance(m, Conv3d)]
        assert len(convs) == 5
        assert convs[0].out_channels == 64 and convs[-1].out_channels == 128

    def test_fc_embedding(self):
        embedding = ObservationEmbeddingFC(input_dim=10, embedding_dim=5)
        assert embedding(np.zeros((4, 10))).shape == (4, 5)
        assert embedding(np.zeros((4, 2, 5))).shape == (4, 5)


class TestAddressAndSampleEmbeddings:
    def test_address_embedding_broadcasts(self):
        embedding = AddressEmbedding(6)
        out = embedding(4)
        assert out.shape == (4, 6)
        assert np.allclose(out.data[0], out.data[3])

    def test_sample_embedding_continuous(self):
        embedding = SampleEmbedding(1, 4)
        encoded = SampleEmbedding.encode_values(Uniform(0.0, 10.0), np.array([5.0, 7.5]))
        assert encoded.shape == (2, 1)
        out = embedding(Tensor(encoded))
        assert out.shape == (2, 4)

    def test_sample_embedding_categorical_one_hot(self):
        prior = Categorical([0.2, 0.3, 0.5])
        assert SampleEmbedding.value_dim_for(prior) == 3
        encoded = SampleEmbedding.encode_values(prior, np.array([2, 0]))
        assert np.allclose(encoded, [[0, 0, 1], [1, 0, 0]])

    def test_encode_values_standardises_continuous(self):
        encoded = SampleEmbedding.encode_values(Uniform(0.0, 2.0), np.array([1.0]))
        assert encoded[0, 0] == pytest.approx(0.0)


class TestProposalLayers:
    def test_factory_chooses_family(self):
        assert isinstance(make_proposal_layer(Uniform(0, 1), 8), ProposalNormalMixture)
        assert isinstance(make_proposal_layer(Normal(0, 1), 8), ProposalNormalMixture)
        assert isinstance(make_proposal_layer(Categorical([0.5, 0.5]), 8), ProposalCategorical)
        from repro.distributions import Poisson

        with pytest.raises(NotImplementedError):
            make_proposal_layer(Poisson(2.0), 8)

    def test_normal_mixture_proposal_distribution_respects_bounds(self):
        layer = ProposalNormalMixture(8, num_components=3)
        hidden = Tensor(np.random.default_rng(0).standard_normal((1, 8)))
        prior = Uniform(-2.0, 2.0)
        proposal = layer.proposal_distribution(hidden, prior)
        samples = np.atleast_1d(proposal.sample(RandomState(0), size=200))
        assert samples.min() >= -2.0 and samples.max() <= 2.0
        assert np.all(np.isfinite(proposal.log_prob(samples)))

    def test_normal_mixture_unbounded_prior(self):
        layer = ProposalNormalMixture(8, num_components=2)
        hidden = Tensor(np.zeros((1, 8)))
        proposal = layer.proposal_distribution(hidden, Normal(3.0, 2.0))
        assert np.isfinite(proposal.log_prob(100.0))  # unbounded support

    def test_normal_mixture_log_prob_is_differentiable(self):
        layer = ProposalNormalMixture(6, num_components=3)
        hidden = Tensor(np.random.default_rng(1).standard_normal((4, 6)), requires_grad=True)
        priors = [Uniform(-1.0, 1.0)] * 4
        values = np.array([0.2, -0.5, 0.9, 0.0])
        log_q = layer.log_prob(hidden, values, priors)
        (-log_q).backward()
        assert all(p.grad is not None for p in layer.parameters())
        assert hidden.grad is not None

    def test_normal_mixture_log_prob_matches_distribution_object(self):
        """The differentiable training log-density and the numpy inference
        distribution must agree (same parameterisation)."""
        layer = ProposalNormalMixture(5, num_components=4)
        hidden_np = np.random.default_rng(2).standard_normal((1, 5))
        prior = Uniform(-2.0, 3.0)
        value = 1.234
        training_log_q = layer.log_prob(Tensor(hidden_np), np.array([value]), [prior]).item()
        inference_dist = layer.proposal_distribution(Tensor(hidden_np), prior)
        assert training_log_q == pytest.approx(float(inference_dist.log_prob(value)), abs=1e-6)

    def test_categorical_proposal_log_prob_and_distribution(self):
        layer = ProposalCategorical(6, num_categories=4)
        hidden_np = np.random.default_rng(3).standard_normal((2, 6))
        values = np.array([1, 3])
        log_q = layer.log_prob(Tensor(hidden_np), values, [Categorical([0.25] * 4)] * 2)
        assert np.isfinite(log_q.item())
        proposal = layer.proposal_distribution(Tensor(hidden_np[:1]), Categorical([0.25] * 4))
        assert proposal.num_categories == 4
        assert np.isclose(proposal.probs.sum(), 1.0)
        # Prior smoothing keeps all categories possible.
        assert np.all(proposal.probs > 0)

    def test_categorical_proposal_gradients(self):
        layer = ProposalCategorical(4, num_categories=3)
        hidden = Tensor(np.random.default_rng(4).standard_normal((3, 4)), requires_grad=True)
        loss = -layer.log_prob(hidden, np.array([0, 1, 2]), [Categorical([1, 1, 1])] * 3)
        loss.backward()
        assert all(p.grad is not None for p in layer.parameters())


def build_network(config, observe_key="obs", input_dim=4):
    return InferenceNetwork(
        observation_embedding=ObservationEmbeddingFC(input_dim=input_dim, embedding_dim=config.observation_embedding_dim),
        config=config,
        observe_key=observe_key,
    )


class TestInferenceNetwork:
    def test_polymorph_creates_layers_per_address(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        traces = mixed_model.prior_traces(5, rng=rng)
        new_params = network.polymorph(traces)
        assert network.num_addresses == 2  # mu and k
        assert len(new_params) > 0
        # Polymorphing again with the same traces creates nothing new.
        assert network.polymorph(traces) == []

    def test_frozen_network_discards_new_addresses(self, small_config, mixed_model, gaussian_model, rng):
        network = build_network(small_config)
        network.polymorph(mixed_model.prior_traces(3, rng=rng))
        network.freeze_architecture()
        before = network.num_parameters()
        network.polymorph(gaussian_model.prior_traces(3, rng=rng))
        assert network.num_parameters() == before
        assert len(network.last_discarded) > 0

    def test_loss_decreases_with_training(self, small_config, mixed_model, rng):
        from repro.tensor import optim

        network = build_network(small_config)
        traces = mixed_model.prior_traces(64, rng=rng)
        network.polymorph(traces)
        opt = optim.Adam(network.parameters(), lr=5e-3)
        first_loss = None
        for _ in range(30):
            loss = network.loss(traces[:32])
            opt.zero_grad()
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss

    def test_loss_requires_traces(self, small_config):
        network = build_network(small_config)
        with pytest.raises(ValueError):
            network.loss([])

    def test_loss_splits_sub_minibatches_by_trace_type(self, small_config, rng):
        def variable_model():
            n = sample(Categorical([0.5, 0.5]), name="n")
            for i in range(int(n) + 1):
                sample(Uniform(0.0, 1.0), name=f"x{i}")
            observe(Normal(0.0, 1.0), value=0.0, name="obs")

        model = FunctionModel(variable_model)
        network = build_network(small_config, input_dim=1)
        traces = model.prior_traces(20, rng=rng)
        network.polymorph(traces)
        network.loss(traces)
        assert network.last_num_sub_minibatches == len({t.trace_type for t in traces})

    def test_inference_session_produces_valid_proposals(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        traces = mixed_model.prior_traces(5, rng=rng)
        network.polymorph(traces)
        observation = np.asarray(traces[0].observation["obs"], dtype=float)
        session = network.inference_session(observation)
        mu_sample = traces[0].samples[0]
        proposal = session.proposal(mu_sample.address, mu_sample.distribution)
        assert proposal is not None
        draw = proposal.sample(rng)
        assert np.isfinite(proposal.log_prob(draw))
        k_sample = traces[0].samples[1]
        proposal_k = session.proposal(k_sample.address, k_sample.distribution, previous_value=draw)
        assert proposal_k is not None
        assert session.num_steps == 2 and session.num_fallbacks == 0

    def test_inference_session_falls_back_for_unknown_address(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        network.polymorph(mixed_model.prior_traces(2, rng=rng))
        session = network.inference_session(np.zeros(4))
        assert session.proposal("never-seen-address", Uniform(0, 1)) is None
        assert session.num_fallbacks == 1

    def test_save_and_load_roundtrip(self, small_config, mixed_model, rng, tmp_path):
        network = build_network(small_config)
        traces = mixed_model.prior_traces(5, rng=rng)
        network.polymorph(traces)
        loss_before = network.loss(traces).item()
        path = os.path.join(tmp_path, "network.pkl")
        network.save(path)
        loaded = InferenceNetwork.load(path)
        assert loaded.num_addresses == network.num_addresses
        assert loaded.num_parameters() == network.num_parameters()
        assert loaded.loss(traces).item() == pytest.approx(loss_before, rel=1e-10)

    def test_multiple_observes_require_observe_key(self, small_config, rng):
        def two_observes():
            x = sample(Uniform(0, 1), name="x")
            observe(Normal(x, 1.0), value=0.0, name="a")
            observe(Normal(x, 1.0), value=0.0, name="b")

        model = FunctionModel(two_observes)
        network = InferenceNetwork(
            observation_embedding=ObservationEmbeddingFC(1, small_config.observation_embedding_dim),
            config=small_config,
            observe_key=None,
        )
        traces = model.prior_traces(2, rng=rng)
        network.polymorph(traces)
        with pytest.raises(ValueError):
            network.loss(traces)

    def test_default_observation_embedding_is_3dcnn(self, small_config):
        network = InferenceNetwork(config=small_config)
        assert isinstance(network.observation_embedding, ObservationEmbedding3DCNN)


class TestPreprocessing:
    def test_pregenerate_layers_freezes(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        created = pregenerate_layers(network, mixed_model.prior_traces(10, rng=rng), freeze=True)
        assert len(created) > 0
        assert network._frozen

    def test_collect_address_statistics(self, mixed_model, rng):
        stats = collect_address_statistics(mixed_model.prior_traces(10, rng=rng))
        assert stats["num_traces"] == 10
        assert stats["num_unique_addresses"] == 2
        assert stats["num_trace_types"] == 1
        assert stats["min_length"] == stats["max_length"] == 2
        assert stats["mean_length"] == pytest.approx(2.0)
