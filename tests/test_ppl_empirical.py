"""Tests for the Empirical posterior representation."""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.ppl import Empirical
from repro.trace import Sample, Trace
from repro.distributions import Uniform


def make_trace(mu, k=None):
    trace = Trace()
    trace.add_sample(Sample("addr_mu", Uniform(-5, 5), mu, log_prob=0.0, name="mu"))
    if k is not None:
        trace.add_sample(Sample("addr_k", Uniform(0, 3), k, log_prob=0.0, name="k"))
    trace.freeze(observation={})
    return trace


class TestWeights:
    def test_uniform_weights_by_default(self):
        emp = Empirical([1.0, 2.0, 3.0])
        assert np.allclose(emp.normalized_weights, 1.0 / 3.0)
        assert emp.effective_sample_size() == pytest.approx(3.0)

    def test_log_weights_are_normalised(self):
        emp = Empirical([0.0, 1.0], log_weights=[0.0, np.log(3.0)])
        assert np.allclose(emp.normalized_weights, [0.25, 0.75])

    def test_degenerate_weights_dominate(self):
        emp = Empirical([0.0, 10.0], log_weights=[-1000.0, 0.0])
        assert emp.mean == pytest.approx(10.0)
        assert emp.effective_sample_size() == pytest.approx(1.0)

    def test_all_minus_inf_weights_fall_back_to_uniform(self):
        emp = Empirical([1.0, 3.0], log_weights=[-np.inf, -np.inf])
        assert np.allclose(emp.normalized_weights, 0.5)

    def test_log_evidence(self):
        emp = Empirical([0.0, 0.0], log_weights=[np.log(2.0), np.log(4.0)])
        assert emp.log_evidence == pytest.approx(np.log(3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0], log_weights=[0.0, 0.0])


class TestSummaries:
    def test_weighted_mean_variance(self):
        emp = Empirical([0.0, 1.0], log_weights=[np.log(0.25), np.log(0.75)])
        assert emp.mean == pytest.approx(0.75)
        assert emp.variance == pytest.approx(0.25 * 0.75**2 + 0.75 * 0.25**2)
        assert emp.stddev == pytest.approx(np.sqrt(emp.variance))

    def test_quantile(self):
        values = np.linspace(0, 1, 101)
        emp = Empirical(list(values))
        assert emp.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        q = emp.quantile([0.1, 0.9])
        assert q[0] < q[1]

    def test_mode_returns_highest_weight_value(self):
        emp = Empirical(["a", "b", "c"], log_weights=[0.0, 3.0, 1.0])
        assert emp.mode() == "b"

    def test_vector_values_refuse_scalar_summaries(self):
        # Regression: reshape(-1)[0] used to silently summarise only the
        # first coordinate of vector-valued latents.
        emp = Empirical([np.array([1.0, 10.0]), np.array([3.0, 30.0])])
        for summary in (lambda: emp.mean, lambda: emp.variance,
                        lambda: emp.quantile(0.5), lambda: emp.histogram()):
            with pytest.raises(ValueError, match="scalar summary"):
                summary()
        # The supported route: project one coordinate explicitly.
        assert emp.map_values(lambda v: v[0]).mean == pytest.approx(2.0)
        assert emp.map_values(lambda v: v[1]).mean == pytest.approx(20.0)
        # Scalar-shaped arrays (0-d and length-1) still summarise fine.
        assert Empirical([np.array([2.0]), np.array(4.0)]).mean == pytest.approx(3.0)

    def test_histogram_is_a_density(self):
        rng = np.random.default_rng(0)
        emp = Empirical(list(rng.standard_normal(2000)))
        density, edges = emp.histogram(bins=30)
        widths = np.diff(edges)
        assert np.isclose(np.sum(density * widths), 1.0)

    def test_categorical_probabilities(self):
        emp = Empirical([0, 1, 1, 2], log_weights=[0.0, 0.0, 0.0, np.log(2.0)])
        probs = emp.categorical_probabilities()
        assert probs[1] == pytest.approx(0.4)
        assert probs[2] == pytest.approx(0.4)
        assert sum(probs.values()) == pytest.approx(1.0)


class TestTraceProjection:
    def test_extract_named_latent(self):
        emp = Empirical([make_trace(0.1), make_trace(0.5)], log_weights=[0.0, np.log(3.0)])
        mu = emp.extract("mu")
        assert mu.mean == pytest.approx(0.25 * 0.1 + 0.75 * 0.5)

    def test_extract_missing_name_raises(self):
        emp = Empirical([make_trace(0.1)])
        with pytest.raises(KeyError):
            emp.extract("nope")

    def test_extract_skips_traces_without_the_name(self):
        emp = Empirical([make_trace(0.1, k=2), make_trace(0.2)])
        k = emp.extract("k")
        assert len(k) == 1

    def test_map_values(self):
        emp = Empirical([make_trace(0.1), make_trace(0.3)])
        doubled = emp.map_values(lambda t: 2 * t["mu"])
        assert doubled.mean == pytest.approx(0.4)


class TestResamplingAndCombine:
    def test_resample_has_uniform_weights(self):
        emp = Empirical([0.0, 1.0], log_weights=[np.log(0.01), np.log(0.99)])
        resampled = emp.resample(500, rng=RandomState(3))
        assert len(resampled) == 500
        assert np.allclose(resampled.log_weights, 0.0)
        assert resampled.mean > 0.9

    def test_combine(self):
        a = Empirical([0.0], log_weights=[0.0])
        b = Empirical([1.0, 2.0], log_weights=[0.0, 0.0])
        combined = Empirical.combine([a, b])
        assert len(combined) == 3

    def test_combine_empty_raises(self):
        with pytest.raises(ValueError):
            Empirical.combine([])

    def test_combine_unequal_rank_sizes_preserves_weights_and_ess(self):
        # Per-rank posteriors of sizes 5/3/2 (the unequal split the
        # distributed IS driver produces); merging must behave exactly like a
        # single run that produced all ten weighted samples.
        rng = np.random.default_rng(8)
        sizes = [5, 3, 2]
        log_weights = [rng.normal(size=s) for s in sizes]
        ranks = [
            Empirical(list(rng.normal(size=s)), lw) for s, lw in zip(sizes, log_weights)
        ]
        combined = Empirical.combine(ranks)
        assert len(combined) == 10
        flat = np.concatenate(log_weights)
        reference = Empirical(list(np.zeros(10)), flat)
        assert np.allclose(combined.log_weights, flat)
        assert combined.effective_sample_size() == pytest.approx(
            reference.effective_sample_size()
        )
        # Kish ESS bounds: between 1 and the total size.
        assert 1.0 <= combined.effective_sample_size() <= 10.0

    def test_combine_uniform_weights_gives_full_ess(self):
        ranks = [Empirical([float(i)] * s) for i, s in enumerate([4, 1, 7])]
        combined = Empirical.combine(ranks)
        assert combined.effective_sample_size() == pytest.approx(12.0)

    def test_summary_caches_are_stable(self):
        emp = Empirical([1.0, 2.0, 3.0], log_weights=[0.0, 0.5, 1.0])
        weights = emp.normalized_weights
        assert emp.normalized_weights is weights
        numeric = emp._numeric()
        assert emp._numeric() is numeric
        assert emp.mean == pytest.approx(float(np.sum(numeric * weights)))

    def test_unweighted_values(self):
        emp = Empirical([5, 6])
        assert emp.unweighted_values() == [5, 6]
