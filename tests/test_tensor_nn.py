"""Tests for the NN module system: modules, layers, containers, LSTM."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor import nn


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 2)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]
        assert layer.num_parameters() == 3 * 2 + 2

    def test_nested_module_names(self):
        net = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        names = [name for name, _ in net.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert all(not module.training for module in net.modules())
        net.train()
        assert all(module.training for module in net.modules())

    def test_zero_grad(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Linear(3, 2)
        b = nn.Linear(3, 2)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)
        assert np.allclose(a.bias.data, b.bias.data)

    def test_state_dict_strict_mismatch_raises(self):
        a = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_state_dict_shape_mismatch_raises(self):
        a = nn.Linear(3, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestLayers:
    def test_linear_shapes_and_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_activation_modules(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(nn.ReLU()(x).data, [[0.0, 2.0]])
        assert np.allclose(nn.Tanh()(x).data, np.tanh([[-1.0, 2.0]]))
        assert np.allclose(nn.Sigmoid()(x).data, 1 / (1 + np.exp([[1.0, -2.0]])))

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert nn.Flatten()(x).shape == (2, 12)

    def test_dropout_module_respects_training_flag(self):
        layer = nn.Dropout(0.5)
        x = Tensor(np.ones((50, 50)))
        layer.eval()
        assert np.allclose(layer(x).data, 1.0)
        layer.train()
        assert not np.allclose(layer(x).data, 1.0)

    def test_embedding_lookup_and_gradient(self):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([0, 4, 0]))
        assert out.shape == (3, 3)
        out.sum().backward()
        assert emb.weight.grad is not None
        # Row 0 was used twice, rows 1-3 never.
        assert np.allclose(emb.weight.grad[1], 0.0)
        assert np.allclose(emb.weight.grad[0], 2.0)

    def test_conv3d_module_output_shape_helper(self):
        conv = nn.Conv3d(1, 4, kernel_size=3, padding=1)
        assert conv.output_shape((8, 8, 8)) == (8, 8, 8)
        out = conv(Tensor(np.zeros((2, 1, 8, 8, 8))))
        assert out.shape == (2, 4, 8, 8, 8)

    def test_maxpool3d_module(self):
        pool = nn.MaxPool3d(2)
        assert pool.output_shape((8, 8, 8)) == (4, 4, 4)
        out = pool(Tensor(np.zeros((1, 1, 8, 8, 8))))
        assert out.shape == (1, 1, 4, 4, 4)

    def test_conv3d_no_bias(self):
        conv = nn.Conv3d(1, 2, kernel_size=3, bias=False)
        assert conv.bias is None


class TestContainers:
    def test_sequential_applies_in_order(self):
        net = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        out = net(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)
        assert len(net) == 3
        assert isinstance(net[1], nn.ReLU)
        assert [type(m).__name__ for m in net] == ["Linear", "ReLU", "Linear"]

    def test_module_list(self):
        modules = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(modules) == 3
        assert modules[2].num_parameters() == 6
        modules.append(nn.Linear(2, 2))
        assert len(modules) == 4
        total = sum(m.num_parameters() for m in modules)
        assert modules.num_parameters() == total

    def test_module_dict_basic(self):
        d = nn.ModuleDict()
        d["layer.a"] = nn.Linear(2, 2)
        d["layer.b"] = nn.Linear(2, 2)
        assert "layer.a" in d and "layer.b" in d
        assert len(d) == 2
        assert list(d.keys()) == ["layer.a", "layer.b"]
        assert d.get("missing") is None
        assert d.get("layer.a") is d["layer.a"]
        assert len(list(d.items())) == 2
        assert len(list(d.values())) == 2

    def test_module_dict_keys_with_dots_do_not_break_parameter_names(self):
        d = nn.ModuleDict()
        d["file.py:fn:12"] = nn.Linear(2, 2)
        names = [name for name, _ in d.named_parameters()]
        assert all(name.count(".") == 1 for name in names)

    def test_module_dict_sanitisation_collisions(self):
        d = nn.ModuleDict()
        d["a.b"] = nn.Linear(1, 1)
        d["a_b"] = nn.Linear(1, 1)
        assert d["a.b"] is not d["a_b"]
        assert len(d) == 2


class TestLSTM:
    def test_lstm_cell_step_shapes(self):
        cell = nn.LSTMCell(4, 6)
        h, c = cell(Tensor(np.zeros((3, 4))))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_lstm_stacked_forward(self):
        lstm = nn.LSTM(4, 6, num_layers=2)
        seq = [Tensor(np.random.default_rng(i).standard_normal((2, 4))) for i in range(5)]
        outputs, state = lstm(seq)
        assert len(outputs) == 5
        assert outputs[0].shape == (2, 6)
        assert len(state) == 2
        assert state[0][0].shape == (2, 6)

    def test_lstm_step_equals_forward(self):
        lstm = nn.LSTM(3, 5)
        seq = [Tensor(np.random.default_rng(i).standard_normal((1, 3))) for i in range(4)]
        outputs, _ = lstm(seq)
        state = None
        for i, x in enumerate(seq):
            out, state = lstm.step(x, state)
            assert np.allclose(out.data, outputs[i].data)

    def test_lstm_requires_positive_layers(self):
        with pytest.raises(ValueError):
            nn.LSTM(3, 5, num_layers=0)

    def test_lstm_gradients_flow_to_all_cells(self):
        lstm = nn.LSTM(3, 4, num_layers=2)
        seq = [Tensor(np.random.default_rng(i).standard_normal((2, 3))) for i in range(3)]
        outputs, _ = lstm(seq)
        total = outputs[0].sum()
        for out in outputs[1:]:
            total = total + (out * out).sum()
        total.backward()
        assert all(p.grad is not None for p in lstm.parameters())

    def test_lstm_forgets_with_zero_input(self):
        lstm = nn.LSTM(2, 3)
        out1, state = lstm.step(Tensor(np.ones((1, 2))))
        out2, _ = lstm.step(Tensor(np.ones((1, 2))), state)
        assert not np.allclose(out1.data, out2.data)


class TestInit:
    def test_xavier_uniform_bounds(self):
        w = nn.init.xavier_uniform((100, 50))
        bound = np.sqrt(6.0 / 150)
        assert np.max(np.abs(w)) <= bound + 1e-12

    def test_kaiming_uniform_shape(self):
        assert nn.init.kaiming_uniform((8, 4, 3, 3, 3)).shape == (8, 4, 3, 3, 3)

    def test_orthogonal_is_orthogonal(self):
        w = nn.init.orthogonal((6, 6))
        assert np.allclose(w @ w.T, np.eye(6), atol=1e-8)

    def test_zeros_and_uniform(self):
        assert np.allclose(nn.init.zeros((3, 3)), 0.0)
        u = nn.init.uniform((100,), -2.0, -1.0)
        assert u.min() >= -2.0 and u.max() <= -1.0
