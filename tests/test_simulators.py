"""Tests for the physics simulators: channels, detector, tau decay, spectroscopy."""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.simulators import (
    DECAY_CHANNELS,
    TAU_MASS,
    Deposit,
    Detector3D,
    DetectorConfig,
    SpectroscopyModel,
    TauDecayConfig,
    TauDecayModel,
    branching_ratios,
    channel_names,
    ground_truth_event,
)
from repro.simulators.spectroscopy import ELEMENT_LINES, SpectroscopyConfig, spectroscopy_program
from repro.simulators.handle import LocalHandle


class TestChannels:
    def test_branching_ratios_normalised(self):
        ratios = branching_ratios()
        assert np.isclose(ratios.sum(), 1.0)
        assert len(ratios) == len(DECAY_CHANNELS)
        assert np.all(ratios > 0)

    def test_dominant_channel_is_pi_pi0(self):
        # tau -> pi pi0 nu has the largest branching ratio in the table.
        assert DECAY_CHANNELS[int(np.argmax(branching_ratios()))].name == "tau->pi pi0 nu"

    def test_every_channel_has_a_neutrino(self):
        for channel in DECAY_CHANNELS:
            assert any(not p.visible for p in channel.products)

    def test_visible_and_invisible_partition(self):
        for channel in DECAY_CHANNELS:
            assert len(channel.visible_products) + len(channel.invisible_products) == channel.num_products

    def test_channel_names_and_mass(self):
        assert len(channel_names()) == len(DECAY_CHANNELS)
        assert TAU_MASS == pytest.approx(1.777, abs=1e-3)

    def test_leptonic_channels_present(self):
        names = channel_names()
        assert "tau->e nu nu" in names and "tau->mu nu nu" in names


class TestDetector:
    def test_deposit_conserves_energy_scale(self):
        detector = Detector3D(DetectorConfig(shape=(6, 9, 9)))
        grid = detector.deposit([Deposit(energy=10.0, impact_x=0.0, impact_y=0.0)])
        assert grid.shape == (6, 9, 9)
        assert grid.sum() == pytest.approx(10.0, rel=1e-6)
        assert np.all(grid >= 0)

    def test_deposit_superposition(self):
        detector = Detector3D(DetectorConfig(shape=(6, 9, 9)))
        a = detector.deposit([Deposit(5.0, 0.5, 0.5)])
        b = detector.deposit([Deposit(3.0, -0.5, -0.5)])
        both = detector.deposit([Deposit(5.0, 0.5, 0.5), Deposit(3.0, -0.5, -0.5)])
        assert np.allclose(both, a + b)

    def test_zero_energy_particles_are_ignored(self):
        detector = Detector3D()
        assert detector.deposit([Deposit(0.0, 0.0, 0.0)]).sum() == 0.0

    def test_impact_position_moves_the_blob(self):
        detector = Detector3D(DetectorConfig(shape=(4, 11, 11)))
        left = detector.deposit([Deposit(5.0, -2.0, 0.0)])
        right = detector.deposit([Deposit(5.0, 2.0, 0.0)])
        # centre of mass along x axis should differ
        xs = np.arange(11)
        com_left = (left.sum(axis=(0, 2)) * xs).sum() / left.sum()
        com_right = (right.sum(axis=(0, 2)) * xs).sum() / right.sum()
        assert com_left < com_right

    def test_em_showers_peak_earlier(self):
        detector = Detector3D(DetectorConfig(shape=(10, 7, 7)))
        em = detector.deposit([Deposit(5.0, 0.0, 0.0, is_electromagnetic=True)])
        had = detector.deposit([Deposit(5.0, 0.0, 0.0, is_electromagnetic=False)])
        assert np.argmax(em.sum(axis=(1, 2))) <= np.argmax(had.sum(axis=(1, 2)))

    def test_observe_noisy_adds_noise(self):
        detector = Detector3D()
        expected = detector.deposit([Deposit(5.0, 0.0, 0.0)])
        noisy = detector.observe_noisy(expected, RandomState(0))
        assert not np.allclose(noisy, expected)
        assert np.std(noisy - expected) == pytest.approx(detector.config.noise_sigma, rel=0.1)

    def test_impact_smearing_and_log_prob(self):
        detector = Detector3D()
        impact = [0.5, -0.5, 1.0]
        smeared = detector.smear_impact(impact, RandomState(1))
        assert smeared.shape == (3,)
        scalar = detector.impact_log_prob(impact, smeared)
        general = Detector3D(use_scalar_mvn=False).impact_log_prob(impact, smeared)
        assert scalar == pytest.approx(general, rel=1e-10)

    def test_paper_size_configuration(self):
        assert DetectorConfig.paper_size().shape == (20, 35, 35)


class TestTauDecayModel:
    def test_prior_trace_structure(self, tau_model, rng):
        trace = tau_model.prior_trace(rng)
        named = trace.named_values()
        for key in ("px", "py", "pz", "channel"):
            assert key in named
        config = tau_model.config
        assert config.px_range[0] <= named["px"] <= config.px_range[1]
        assert config.pz_range[0] <= named["pz"] <= config.pz_range[1]
        assert 0 <= named["channel"] < len(DECAY_CHANNELS)
        assert trace.observation["detector"].shape == tau_model.observation_shape

    def test_rejection_loop_gives_variable_trace_lengths(self, tau_model, rng):
        lengths = {tau_model.prior_trace(rng).length for _ in range(40)}
        assert len(lengths) > 3

    def test_result_contains_figure8_variables(self, tau_model, rng):
        result = tau_model.prior_trace(rng).result
        for key in ("px", "py", "pz", "channel", "fsp_energy_1", "fsp_energy_2", "met"):
            assert key in result
        assert result["fsp_energy_1"] >= result["fsp_energy_2"] >= 0.0
        assert result["met"] >= 0.0
        assert result["tau_energy"] >= abs(result["pz"])

    def test_channel_frequencies_follow_branching_ratios(self, tau_model, rng):
        counts = np.zeros(len(DECAY_CHANNELS))
        for _ in range(400):
            counts[tau_model.prior_trace(rng)["channel"]] += 1
        freq = counts / counts.sum()
        # The dominant channel should be sampled most often.
        assert int(np.argmax(freq)) == int(np.argmax(branching_ratios()))

    def test_energy_fractions_are_positive_and_bounded(self, tau_model, rng):
        trace = tau_model.prior_trace(rng)
        fractions = [s.value for s in trace.samples if s.name and s.name.startswith("fraction_")]
        assert all(0.0 < f <= 1.0 for f in fractions)

    def test_observation_responds_to_momentum(self):
        # Very different px values should give visibly different detector images.
        _, obs_a = ground_truth_event(overrides={"px": -2.5, "py": 0.0, "pz": 45.0, "channel": 0}, rng=RandomState(0))
        _, obs_b = ground_truth_event(overrides={"px": 2.5, "py": 0.0, "pz": 45.0, "channel": 0}, rng=RandomState(0))
        assert not np.allclose(obs_a, obs_b)

    def test_ground_truth_event_respects_overrides(self):
        result, observation = ground_truth_event(overrides={"channel": 3, "px": 1.5}, rng=RandomState(5))
        assert result["channel"] == 3
        assert result["px"] == pytest.approx(1.5)
        assert observation.shape == TauDecayConfig().detector.shape

    def test_conditioned_trace_scores_supplied_observation(self, tau_model, rng):
        _, observation = ground_truth_event(rng=rng)
        trace = tau_model.get_trace(observed_values={"detector": observation}, rng=rng)
        assert np.allclose(trace.observes[0].value, observation)

    def test_custom_detector_shape(self):
        config = TauDecayConfig(detector=DetectorConfig(shape=(4, 7, 7)))
        model = TauDecayModel(config)
        assert model.prior_trace().observation["detector"].shape == (4, 7, 7)


class TestSpectroscopyModel:
    def test_prior_trace_structure(self, rng):
        model = SpectroscopyModel()
        trace = model.prior_trace(rng)
        result = trace.result
        assert set(result["fractions"]) == set(model.config.elements)
        assert np.isclose(sum(result["fractions"].values()), 1.0)
        assert trace.observation["spectrum"].shape == (model.config.num_channels,)
        assert model.config.dispersion_range[0] <= result["dispersion"] <= model.config.dispersion_range[1]

    def test_spectrum_is_nonnegative_before_noise(self, rng):
        result = SpectroscopyModel().prior_trace(rng).result
        assert np.all(result["expected_spectrum"] >= 0)

    def test_composition_changes_spectrum(self, rng):
        config = SpectroscopyConfig()
        axis_peaks = {}
        for element in ("Fe", "Si"):
            handle = LocalHandle()
            # run outside a tracing context: sample() falls back to prior draws,
            # so pin the composition by calling the program pieces directly
            spectrum = np.zeros(config.num_channels)
            for line in ELEMENT_LINES[element]:
                spectrum += line.intensity * np.exp(
                    -0.5 * ((np.linspace(0, 1, config.num_channels) - line.position) / 0.01) ** 2
                )
            axis_peaks[element] = int(np.argmax(spectrum))
        assert axis_peaks["Fe"] != axis_peaks["Si"]

    def test_every_element_has_lines(self):
        config = SpectroscopyConfig()
        for element in config.elements:
            assert element in ELEMENT_LINES
            assert len(ELEMENT_LINES[element]) >= 1

    def test_inference_recovers_dominant_element(self, rng):
        # Build an observation dominated by Fe and check IS posterior prefers Fe.
        model = SpectroscopyModel()
        from repro.ppl.state import Controller

        class _Fixed(Controller):
            def choose(self, address, instance, distribution, name, inner_rng):
                overrides = {"abundance_Fe": 0.95, "abundance_Ni": 0.06, "abundance_Cr": 0.06, "abundance_Si": 0.06,
                             "dispersion": 0.02, "background": 0.05}
                value = overrides.get(name, distribution.sample(inner_rng))
                return value, float(np.sum(distribution.log_prob(value)))

        truth = model.get_trace(_Fixed(), rng=rng)
        observation = truth.observation["spectrum"]
        posterior = model.posterior({"spectrum": observation}, num_traces=400, engine="importance_sampling", rng=rng)
        fe = posterior.extract("abundance_Fe").mean
        si = posterior.extract("abundance_Si").mean
        assert fe > si
