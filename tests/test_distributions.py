"""Tests for repro.distributions: sampling statistics, densities, serialisation."""

import numpy as np
import pytest
from scipy import stats
from scipy.special import logsumexp

from repro.common.rng import RandomState
from repro.distributions import (
    Bernoulli,
    Beta,
    Categorical,
    Distribution,
    Exponential,
    Gamma,
    Mixture,
    MultivariateNormal,
    Normal,
    Poisson,
    TruncatedNormal,
    Uniform,
    distribution_from_dict,
)


RNG = RandomState(77)


def check_moments(dist, n=20000, rtol=0.1, atol=0.05):
    samples = np.asarray(dist.sample(RNG, size=n), dtype=float)
    assert np.isclose(samples.mean(), dist.mean, rtol=rtol, atol=atol)
    assert np.isclose(samples.var(), dist.variance, rtol=3 * rtol, atol=3 * atol)


def check_roundtrip(dist):
    rebuilt = distribution_from_dict(dist.to_dict())
    assert rebuilt == dist
    assert type(rebuilt) is type(dist)


class TestNormal:
    def test_log_prob_matches_scipy(self):
        dist = Normal(1.5, 2.0)
        x = np.linspace(-5, 8, 30)
        assert np.allclose(dist.log_prob(x), stats.norm(1.5, 2.0).logpdf(x))

    def test_moments_and_sampling(self):
        check_moments(Normal(-2.0, 0.7))

    def test_cdf_icdf_inverse(self):
        dist = Normal(0.5, 1.2)
        q = np.array([0.1, 0.5, 0.9])
        assert np.allclose(dist.cdf(dist.icdf(q)), q)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)

    def test_roundtrip(self):
        check_roundtrip(Normal(3.0, 0.2))

    def test_vector_parameters(self):
        dist = Normal(np.zeros(4), np.ones(4) * 2.0)
        x = np.ones(4)
        assert dist.log_prob(x).shape == (4,)
        assert np.allclose(dist.log_prob(x), stats.norm(0, 2).logpdf(1.0))

    def test_stddev(self):
        assert Normal(0.0, 3.0).stddev == pytest.approx(3.0)


class TestUniform:
    def test_log_prob_inside_and_outside(self):
        dist = Uniform(-1.0, 3.0)
        assert dist.log_prob(0.0) == pytest.approx(-np.log(4.0))
        assert dist.log_prob(5.0) == -np.inf
        assert dist.log_prob(-2.0) == -np.inf

    def test_moments(self):
        check_moments(Uniform(2.0, 6.0))

    def test_samples_in_support(self):
        samples = Uniform(-1.0, 1.0).sample(RNG, size=1000)
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)

    def test_roundtrip(self):
        check_roundtrip(Uniform(0.0, 2.5))


class TestCategorical:
    def test_probabilities_normalised(self):
        dist = Categorical([2.0, 1.0, 1.0])
        assert np.allclose(dist.probs, [0.5, 0.25, 0.25])
        assert dist.num_categories == 3

    def test_log_prob(self):
        dist = Categorical([0.2, 0.8])
        assert dist.log_prob(1) == pytest.approx(np.log(0.8))
        assert dist.log_prob(5) == -np.inf
        assert dist.log_prob(np.array([0, 1])).shape == (2,)

    def test_sampling_frequencies(self):
        dist = Categorical([0.7, 0.2, 0.1])
        samples = dist.sample(RNG, size=20000)
        freq = np.bincount(samples, minlength=3) / 20000
        assert np.allclose(freq, dist.probs, atol=0.02)

    def test_scalar_sample_is_int(self):
        assert isinstance(Categorical([0.5, 0.5]).sample(RNG), int)

    def test_moments(self):
        dist = Categorical([0.25, 0.25, 0.5])
        assert dist.mean == pytest.approx(1.25)
        assert dist.variance == pytest.approx(0.6875)

    def test_validation(self):
        with pytest.raises(ValueError):
            Categorical([[0.5, 0.5]])
        with pytest.raises(ValueError):
            Categorical([-0.1, 1.1])
        with pytest.raises(ValueError):
            Categorical([0.0, 0.0])

    def test_roundtrip(self):
        check_roundtrip(Categorical([0.1, 0.2, 0.7]))


class TestTruncatedNormal:
    def test_log_prob_matches_scipy(self):
        loc, scale, low, high = 0.5, 1.2, -1.0, 2.0
        dist = TruncatedNormal(loc, scale, low, high)
        ref = stats.truncnorm((low - loc) / scale, (high - loc) / scale, loc=loc, scale=scale)
        x = np.linspace(-0.9, 1.9, 17)
        assert np.allclose(dist.log_prob(x), ref.logpdf(x))

    def test_log_prob_outside_support(self):
        dist = TruncatedNormal(0.0, 1.0, -1.0, 1.0)
        assert dist.log_prob(1.5) == -np.inf

    def test_samples_within_bounds(self):
        dist = TruncatedNormal(0.0, 5.0, -0.5, 0.5)
        samples = dist.sample(RNG, size=2000)
        assert samples.min() >= -0.5 and samples.max() <= 0.5

    def test_moments_against_scipy(self):
        loc, scale, low, high = 1.0, 0.8, 0.0, 3.0
        dist = TruncatedNormal(loc, scale, low, high)
        ref = stats.truncnorm((low - loc) / scale, (high - loc) / scale, loc=loc, scale=scale)
        assert dist.mean == pytest.approx(ref.mean(), rel=1e-6)
        assert dist.variance == pytest.approx(ref.var(), rel=1e-6)

    def test_far_tail_truncation_is_finite(self):
        dist = TruncatedNormal(-50.0, 1.0, 0.0, 1.0)
        assert np.isfinite(dist.log_prob(0.5))
        assert 0.0 <= dist.sample(RNG) <= 1.0

    @pytest.mark.parametrize("low,high", [(8.0, 9.0), (-9.0, -8.0), (12.0, 12.5)])
    def test_far_tail_log_prob_matches_scipy(self, low, high):
        dist = TruncatedNormal(0.0, 1.0, low, high)
        ref = stats.truncnorm(low, high, loc=0.0, scale=1.0)
        x = np.linspace(low, high, 9)
        assert np.allclose(dist.log_prob(x), ref.logpdf(x), atol=1e-8)

    @pytest.mark.parametrize("low,high", [(8.0, 9.0), (-9.0, -8.0)])
    def test_far_tail_sampling_stays_in_support_with_correct_moments(self, low, high):
        dist = TruncatedNormal(0.0, 1.0, low, high)
        samples = dist.sample(RNG, size=4000)
        assert samples.min() >= low and samples.max() <= high
        # Far-tail truncations concentrate hard against the near bound; the
        # naive CDF-difference sampler would collapse to a constant here.
        ref = stats.truncnorm(low, high, loc=0.0, scale=1.0)
        assert np.std(samples) > 0
        assert np.mean(samples) == pytest.approx(ref.mean(), abs=0.02)

    def test_far_tail_density_integrates_to_one(self):
        dist = TruncatedNormal(0.0, 1.0, 10.0, 11.0)
        x = np.linspace(10.0, 11.0, 20001)
        integral = np.trapezoid(np.exp(dist.log_prob(x)), x)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_batch_build_matches_scalar_construction(self):
        locs = [0.3, -1.0, 0.0, 2.0]
        scales = [0.7, 1.5, 1.0, 0.2]
        lows = [-1.0, 0.0, 8.0, -9.0]
        highs = [2.0, 4.0, 9.0, -8.0]
        built = TruncatedNormal.batch_build(locs, scales, lows, highs)
        for fast, (loc, scale, low, high) in zip(built, zip(locs, scales, lows, highs)):
            ref = TruncatedNormal(loc, scale, low, high)
            x = np.linspace(low, high, 7)
            assert np.allclose(fast.log_prob(x), ref.log_prob(x))
            assert fast._z == ref._z and fast._log_z == ref._log_z

    def test_batch_build_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormal.batch_build([0.0], [0.0], [-1.0], [1.0])
        with pytest.raises(ValueError):
            TruncatedNormal.batch_build([0.0], [1.0], [1.0], [-1.0])

    def test_degenerate_far_tail_moments_collapse_to_endpoint(self):
        # Z underflows to exactly zero here (ndtr(-40) == 0.0); the old
        # moment formulas divided by the 1e-300 placeholder and reported
        # values off by hundreds of orders of magnitude.
        right = TruncatedNormal(0.0, 1.0, 40.0, 41.0)
        assert right._degenerate
        assert right.mean == 40.0
        assert right.variance == 0.0
        left = TruncatedNormal(0.0, 1.0, -41.0, -40.0)
        assert left.mean == -40.0
        assert left.variance == 0.0
        # batch_build carries the same degeneracy flag per element.
        fast = TruncatedNormal.batch_build([0.0, 0.0], [1.0, 1.0], [40.0, -1.0], [41.0, 1.0])
        assert fast[0]._degenerate and not fast[1]._degenerate
        assert fast[0].mean == 40.0 and fast[0].variance == 0.0

    def test_near_degenerate_moments_stay_inside_support(self):
        # Z survives as a tiny non-zero value via catastrophic cancellation;
        # the raw formulas put the mean outside [low, high] and the variance
        # below zero.  Both are clamped to the feasible range.
        dist = TruncatedNormal(0.0, 1.0, 10.0, 10.0 + 1e-13)
        assert dist.low <= dist.mean <= dist.high
        assert 0.0 <= dist.variance <= (0.5 * (dist.high - dist.low)) ** 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormal(0.0, 0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            TruncatedNormal(0.0, 1.0, 1.0, -1.0)

    def test_roundtrip(self):
        check_roundtrip(TruncatedNormal(0.3, 0.7, -1.0, 2.0))


class TestMixture:
    def test_log_prob_is_weighted_logsumexp(self):
        mix = Mixture([Normal(-1.0, 0.5), Normal(1.0, 0.5)], [0.3, 0.7])
        x = np.linspace(-2, 2, 9)
        expected = np.log(
            0.3 * stats.norm(-1, 0.5).pdf(x) + 0.7 * stats.norm(1, 0.5).pdf(x)
        )
        assert np.allclose(mix.log_prob(x), expected)

    def test_moments(self):
        mix = Mixture([Normal(-1.0, 0.5), Normal(1.0, 0.5)], [0.5, 0.5])
        assert mix.mean == pytest.approx(0.0)
        assert mix.variance == pytest.approx(0.25 + 1.0)
        assert isinstance(mix.mean, float) and isinstance(mix.variance, float)

    def test_vector_component_moments_are_per_coordinate(self):
        # Regression: float(np.sum(...)) used to collapse vector component
        # means/variances into one scalar (summing across coordinates).
        mix = Mixture(
            [Normal(np.zeros(2), 1.0), Normal(np.array([2.0, 4.0]), 1.0)], [0.5, 0.5]
        )
        assert np.allclose(mix.mean, [1.0, 2.0])
        # var = E[var] + Var[means] per coordinate.
        assert np.allclose(mix.variance, [1.0 + 1.0, 1.0 + 4.0])

    def test_sampling_covers_components(self):
        mix = Mixture([Normal(-5.0, 0.1), Normal(5.0, 0.1)], [0.5, 0.5])
        samples = mix.sample(RNG, size=500)
        assert (samples < 0).any() and (samples > 0).any()

    def test_scalar_sample(self):
        mix = Mixture([Uniform(0.0, 1.0)], [1.0])
        assert 0.0 <= float(mix.sample(RNG)) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Normal(0, 1)], [0.5, 0.5])
        with pytest.raises(ValueError):
            Mixture([Normal(0, 1)], [-1.0])
        with pytest.raises(ValueError):
            Mixture([Normal(0, 1), Normal(1, 1)], [0.0, 0.0])

    def test_roundtrip(self):
        mix = Mixture([Normal(0.0, 1.0), TruncatedNormal(0.0, 1.0, -1.0, 1.0)], [0.4, 0.6])
        rebuilt = distribution_from_dict(mix.to_dict())
        x = np.linspace(-0.9, 0.9, 5)
        assert np.allclose(rebuilt.log_prob(x), mix.log_prob(x))

    def test_truncated_fast_path_matches_generic_loop(self):
        components = [TruncatedNormal(0.1 * k, 0.5 + 0.1 * k, -2.0, 2.0) for k in range(5)]
        mix = Mixture(components, [0.1, 0.2, 0.3, 0.25, 0.15])
        assert mix._fast_params is not None
        x = np.linspace(-2.5, 2.5, 11)  # includes out-of-support points
        generic = logsumexp(
            np.stack([lw + c.log_prob(x) for lw, c in zip(mix._log_weights, components)]), axis=0
        )
        assert np.allclose(mix.log_prob(x), generic)
        assert np.isscalar(float(mix.log_prob(0.3)))

    def test_heterogeneous_mixture_falls_back_to_generic_path(self):
        mix = Mixture([Normal(0.0, 1.0), Uniform(-1.0, 1.0)], [0.5, 0.5])
        assert mix._fast_params is None
        expected = np.log(0.5 * stats.norm(0, 1).pdf(0.2) + 0.5 * 0.5)
        assert mix.log_prob(0.2) == pytest.approx(expected)

    def test_vectorized_size_sampling(self):
        mix = Mixture([Normal(-5.0, 0.1), Normal(5.0, 0.1)], [0.5, 0.5])
        samples = mix.sample(RNG, size=(40, 25))
        assert samples.shape == (40, 25)
        assert (samples < 0).any() and (samples > 0).any()
        assert np.all(np.abs(np.abs(samples) - 5.0) < 2.0)


class TestMultivariateNormal:
    def test_log_prob_matches_scipy_full_cov(self):
        cov = np.array([[1.0, 0.3, 0.1], [0.3, 2.0, 0.2], [0.1, 0.2, 0.5]])
        loc = np.array([1.0, -1.0, 0.5])
        dist = MultivariateNormal(loc, cov)
        ref = stats.multivariate_normal(loc, cov)
        x = np.array([[0.0, 0.0, 0.0], [1.0, -1.0, 0.5], [2.0, 1.0, -1.0]])
        assert np.allclose(dist.log_prob(x), ref.logpdf(x))

    def test_diagonal_covariance_vector(self):
        dist = MultivariateNormal([0.0, 0.0], [1.0, 4.0])
        ref = stats.multivariate_normal([0, 0], np.diag([1.0, 4.0]))
        x = np.array([0.5, -1.0])
        assert dist.log_prob(x) == pytest.approx(ref.logpdf(x))

    def test_scalar_3d_path_matches_general_diagonal(self):
        dist = MultivariateNormal([0.1, 0.2, 0.3], [0.5, 1.0, 2.0])
        x = np.random.default_rng(0).standard_normal((20, 3))
        assert np.allclose(dist.log_prob_3d_scalar(x), dist.log_prob(x))

    def test_scalar_3d_path_matches_general_full(self):
        cov = np.array([[1.0, 0.2, 0.0], [0.2, 1.5, 0.1], [0.0, 0.1, 0.8]])
        dist = MultivariateNormal([0.0, 0.0, 0.0], cov)
        x = np.random.default_rng(1).standard_normal((20, 3))
        assert np.allclose(dist.log_prob_3d_scalar(x), dist.log_prob(x))

    def test_scalar_3d_requires_3_dimensions(self):
        with pytest.raises(ValueError):
            MultivariateNormal([0.0, 0.0], [1.0, 1.0]).log_prob_3d_scalar([0.0, 0.0])

    def test_sampling_mean_and_cov(self):
        cov = np.array([[1.0, 0.5], [0.5, 2.0]])
        dist = MultivariateNormal([1.0, -1.0], cov)
        samples = dist.sample(RNG, size=20000)
        assert np.allclose(samples.mean(axis=0), [1.0, -1.0], atol=0.05)
        assert np.allclose(np.cov(samples.T), cov, atol=0.1)

    def test_single_sample_shape(self):
        dist = MultivariateNormal([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        assert np.asarray(dist.sample(RNG)).shape == (3,)

    def test_moments(self):
        dist = MultivariateNormal([1.0, 2.0], [3.0, 4.0])
        assert np.allclose(dist.mean, [1.0, 2.0])
        assert np.allclose(dist.variance, [3.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            MultivariateNormal([0.0, 0.0], [1.0])
        with pytest.raises(ValueError):
            MultivariateNormal([0.0, 0.0], [-1.0, 1.0])
        with pytest.raises(ValueError):
            MultivariateNormal([0.0], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            MultivariateNormal([0.0, 0.0], np.zeros((2, 2, 2)))

    def test_roundtrip(self):
        check_roundtrip(MultivariateNormal([0.0, 1.0], [[2.0, 0.1], [0.1, 1.0]]))


class TestScalarDistributions:
    def test_beta_matches_scipy(self):
        dist = Beta(2.0, 3.0)
        x = np.linspace(0.05, 0.95, 10)
        assert np.allclose(dist.log_prob(x), stats.beta(2, 3).logpdf(x))
        assert dist.log_prob(1.5) == -np.inf
        check_moments(dist)
        check_roundtrip(dist)

    def test_gamma_matches_scipy(self):
        dist = Gamma(3.0, 2.0)
        x = np.linspace(0.1, 20, 10)
        assert np.allclose(dist.log_prob(x), stats.gamma(3, scale=2).logpdf(x))
        assert dist.log_prob(-1.0) == -np.inf
        check_moments(dist, rtol=0.15)
        check_roundtrip(dist)

    def test_exponential_matches_scipy(self):
        dist = Exponential(2.0)
        x = np.linspace(0.0, 5, 10)
        assert np.allclose(dist.log_prob(x), stats.expon(scale=0.5).logpdf(x))
        assert dist.log_prob(-0.1) == -np.inf
        check_moments(dist)
        check_roundtrip(dist)

    def test_poisson_matches_scipy(self):
        dist = Poisson(4.0)
        k = np.arange(0, 15)
        assert np.allclose(dist.log_prob(k), stats.poisson(4.0).logpmf(k))
        assert dist.log_prob(2.5) == -np.inf
        assert dist.log_prob(-1) == -np.inf
        assert isinstance(dist.sample(RNG), int)
        check_moments(dist, rtol=0.1)
        check_roundtrip(dist)

    def test_bernoulli(self):
        dist = Bernoulli(0.3)
        assert dist.log_prob(1) == pytest.approx(np.log(0.3))
        assert dist.log_prob(0) == pytest.approx(np.log(0.7))
        assert dist.log_prob(2) == -np.inf
        assert dist.mean == pytest.approx(0.3)
        assert dist.variance == pytest.approx(0.21)
        samples = dist.sample(RNG, size=10000)
        assert abs(samples.mean() - 0.3) < 0.02
        check_roundtrip(dist)

    def test_scalar_validation(self):
        with pytest.raises(ValueError):
            Beta(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(-1.0, 1.0)
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Poisson(-2.0)
        with pytest.raises(ValueError):
            Bernoulli(1.5)


class TestRegistry:
    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            distribution_from_dict({"type": "NotADistribution"})

    def test_equality_and_hash(self):
        a, b = Normal(0.0, 1.0), Normal(0.0, 1.0)
        assert a == b
        assert a != Uniform(0.0, 1.0)
        assert a != Normal(0.0, 2.0)
        assert hash(a) == hash(b)
        assert (a == 5) is False or (a == 5) is NotImplemented or True

    def test_equality_with_mismatched_parameter_shapes_is_false(self):
        # Regression: np.allclose raises on non-broadcastable shapes, so
        # comparing a grid-likelihood Normal against a differently shaped one
        # used to crash __eq__ instead of answering "not equal".
        assert Normal(np.array([0.0, 1.0, 2.0]), 1.0) != Normal(np.array([0.0, 1.0]), 1.0)
        grid_a = Normal(np.zeros((3, 4)), 0.5)
        grid_b = Normal(np.zeros((2, 2)), 0.5)
        assert grid_a != grid_b
        # Broadcast-compatible shapes still compare by value: a scalar-loc
        # Normal equals a grid Normal whose entries all match it.
        assert Normal(0.0, 1.0) == Normal(np.zeros(3), np.ones(3))
        assert Normal(0.0, 1.0) != Normal(np.array([0.0, 0.5]), 1.0)

    def test_equality_of_structured_parameters(self):
        # Mixture's to_dict carries a list of component dicts — not a numeric
        # array.  Equality must compare it structurally, not refuse it.
        mix_a = Mixture([Normal(0.0, 1.0), Normal(1.0, 2.0)], [0.5, 0.5])
        mix_b = Mixture([Normal(0.0, 1.0), Normal(1.0, 2.0)], [0.5, 0.5])
        assert mix_a == mix_b
        assert mix_a != Mixture([Normal(0.0, 1.0), Normal(1.0, 3.0)], [0.5, 0.5])
        assert mix_a != Mixture([Normal(0.0, 1.0), Normal(1.0, 2.0)], [0.9, 0.1])
        check_roundtrip(mix_a)

    def test_prob_is_exp_log_prob(self):
        dist = Normal(0.0, 1.0)
        assert dist.prob(0.0) == pytest.approx(np.exp(dist.log_prob(0.0)))
