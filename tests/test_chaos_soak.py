"""Chaos soak: randomized fault plans against the full serving stack.

The gate the robustness work answers to: under injected worker crashes,
straggler delays, admission-reject bursts and transport drops, the service
must (1) never hang — every submitted future resolves within the timeout;
(2) never lose a future — each resolves with a posterior or a typed serving
error; (3) keep the determinism contract — every non-shed request's posterior
is bit-identical to a direct engine run with the same seed; (4) make every
injected fault observable in ``service.stats()``; and (5) leave a capture
that replays bit-identically, so a failing seed is a committable regression
case.

Seeds are overridable for CI triage: ``CHAOS_SEEDS=17,99 pytest
tests/test_chaos_soak.py`` re-runs exactly the failing schedules.
"""

import os

import pytest

from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.inference.batched import batched_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import (
    CircuitBreaker,
    PosteriorService,
    RetryPolicy,
    ServiceOverloaded,
    ServiceResilience,
    posterior_digest,
    replay_capture,
)
from repro.testing import FaultPlan, FaultRule, activate, faults
from tests.test_batched_inference import OBSERVATION, lockstep_program

CHAOS_SEEDS = [
    int(token)
    for token in os.environ.get("CHAOS_SEEDS", "101,202,303").split(",")
    if token.strip()
]


@pytest.fixture(scope="module")
def served_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.clear()


def thread_chaos_plan(seed: int) -> FaultPlan:
    """Transient cohort errors + stragglers + admission bursts, from one seed.

    The error budget (limit=3) stays under the retry budget the soak grants
    (max_attempts=4), so every admitted request is *guaranteed* recoverable —
    any failed future is therefore a lost-future bug, not bad luck.
    """
    return FaultPlan(
        [
            FaultRule(site="workers.cohort", kind="error", probability=0.3, limit=3),
            FaultRule(site="workers.cohort", kind="delay", probability=0.3,
                      delay=0.01, limit=6),
            FaultRule(site="service.admit", kind="reject", probability=0.15, limit=2),
        ],
        seed=seed,
    )


def _assert_seed_identical(model, network, result, seed, num_traces):
    direct = batched_importance_sampling(
        model, OBSERVATION, num_traces=num_traces, batch_size=64,
        network=network, rng=RandomState(seed),
    )
    assert posterior_digest(result.posterior) == posterior_digest(direct)


class TestThreadSoak:
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_soak_thread_backend(self, served_engine, tmp_path, chaos_seed):
        model, engine = served_engine
        plan = thread_chaos_plan(chaos_seed)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
            CircuitBreaker(failure_threshold=100),  # soak retries; breaker storms are tested elsewhere
        )
        capture_path = str(tmp_path / f"chaos-{chaos_seed}.jsonl")
        submitted, shed = {}, 0
        with activate(plan):
            service = PosteriorService(
                model, engine.network, observe_key="obs", max_batch=32,
                max_latency=0.005, num_workers=2, resilience=resilience,
                capture=capture_path,
            ).start()
            try:
                for request_seed in range(8):
                    try:
                        submitted[request_seed] = service.submit(
                            OBSERVATION, num_traces=8, seed=request_seed, use_cache=False
                        )
                    except ServiceOverloaded:
                        shed += 1  # injected queue-full burst: typed, at the door
                # Gate 1+2: every future resolves (no hangs, no lost futures)
                # and — by construction of the plan's error budget — resolves
                # successfully.
                results = {
                    seed: future.result(timeout=120)
                    for seed, future in submitted.items()
                }
                stats = service.stats()
            finally:
                service.stop()
        # Gate 3: bit-identical posteriors for every non-shed request.
        for request_seed, result in results.items():
            _assert_seed_identical(model, engine.network, result, request_seed, 8)
        # Gate 4: every injected fault is observable in the metrics surface.
        assert stats["faults_injected"] == plan.total_fired()
        assert stats["faults"] == plan.fired_counts()
        assert stats["rejected_overload"] == shed == plan.fired_counts().get(
            "service.admit/reject", 0
        )
        injected_errors = plan.fired_counts().get("workers.cohort/error", 0)
        assert stats["retries"] >= min(injected_errors, 1)
        assert stats["failed"] == 0
        # Gate 5: the chaos capture replays bit-identically on a clean service.
        faults.clear()
        with PosteriorService(
            model, engine.network, observe_key="obs", max_batch=32,
            max_latency=0.005, num_workers=2,
        ) as replay_service:
            report = replay_capture(capture_path, replay_service)
        assert report.ok
        assert report.matched == len(results)


class TestProcessSoak:
    def test_soak_process_backend_with_worker_crashes(self, served_engine):
        model, engine = served_engine
        chaos_seed = CHAOS_SEEDS[0]
        plan = FaultPlan.randomized(chaos_seed, transport=False)
        resilience = ServiceResilience(
            RetryPolicy(max_attempts=4, base_delay=0.02, jitter=0.0),
            CircuitBreaker(failure_threshold=100),
        )
        submitted, shed = {}, 0
        with activate(plan):
            service = PosteriorService(
                model, engine.network, observe_key="obs", max_batch=32,
                max_latency=0.005, num_workers=2, backend="process",
                max_requeues=2, resilience=resilience,
            ).start()
            try:
                service.workers.health_interval = 0.02
                for request_seed in range(6):
                    try:
                        submitted[request_seed] = service.submit(
                            OBSERVATION, num_traces=8, seed=request_seed, use_cache=False
                        )
                    except ServiceOverloaded:
                        shed += 1
                results = {
                    seed: future.result(timeout=180)
                    for seed, future in submitted.items()
                }
                stats = service.stats()
            finally:
                service.stop()
        assert len(results) + shed == 6
        for request_seed, result in results.items():
            _assert_seed_identical(model, engine.network, result, request_seed, 8)
        assert stats["faults_injected"] == plan.total_fired()
        crashes = plan.fired_counts().get("procpool.dispatch/crash", 0)
        assert stats["workers"]["worker_crashes"] >= crashes
        assert stats["failed"] == 0
