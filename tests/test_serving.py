"""Tests of the posterior serving subsystem.

Covers the acceptance properties of the serving layer: cache hit/miss
semantics (LRU + TTL, frozen summaries), deadline shedding and admission
control, and the seeded-equivalence guarantee — a micro-batched request
returns the same posterior as a direct ``posterior()`` call with the same
seed, no matter how the scheduler packed it into cohorts.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.empirical import Empirical, FrozenPosterior
from repro.ppl.inference.batched import batched_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import (
    DeadlineExceeded,
    PosteriorCache,
    PosteriorService,
    ServiceOverloaded,
    observation_fingerprint,
)
from tests.test_batched_inference import OBSERVATION, lockstep_program

OBSERVATION_B = {"obs": np.array([0.2, -0.4, 0.8, 0.6])}


@pytest.fixture(scope="module")
def served_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


def make_service(model, engine, **kwargs):
    defaults = dict(observe_key="obs", max_batch=32, max_latency=0.01, num_workers=2)
    defaults.update(kwargs)
    return PosteriorService(model, engine.network, **defaults)


class TestSeededEquivalence:
    def test_served_posterior_identical_to_direct_inference(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            futures = {
                seed: service.submit(OBSERVATION, num_traces=16, seed=seed, use_cache=False)
                for seed in (7, 11, 13)
            }
            served = {seed: future.result(timeout=60) for seed, future in futures.items()}
        for seed, result in served.items():
            direct = batched_importance_sampling(
                model, OBSERVATION, num_traces=16, batch_size=64,
                network=engine.network, rng=RandomState(seed),
            )
            assert not result.cached
            for latent in ("a", "b", "c"):
                assert result.posterior.extract(latent).mean == pytest.approx(
                    direct.extract(latent).mean, abs=1e-9
                )
            assert result.posterior.log_evidence == pytest.approx(direct.log_evidence, abs=1e-9)

    def test_equivalence_survives_mixed_observation_cohorts(self, served_engine):
        model, engine = served_engine
        # Two different observations submitted back-to-back land in the same
        # cohort (max_latency gives the scheduler time to coalesce them).
        with make_service(model, engine, max_latency=0.05, num_workers=1) as service:
            future_a = service.submit(OBSERVATION, num_traces=12, seed=3, use_cache=False)
            future_b = service.submit(OBSERVATION_B, num_traces=12, seed=5, use_cache=False)
            result_a = future_a.result(timeout=60)
            result_b = future_b.result(timeout=60)
            stats = service.stats()
        assert stats["mixed_cohort_fraction"] > 0  # they really shared a cohort
        for observation, seed, result in (
            (OBSERVATION, 3, result_a),
            (OBSERVATION_B, 5, result_b),
        ):
            direct = batched_importance_sampling(
                model, observation, num_traces=12, batch_size=64,
                network=engine.network, rng=RandomState(seed),
            )
            assert result.posterior.extract("a").mean == pytest.approx(
                direct.extract("a").mean, abs=1e-9
            )


class TestCacheSemantics:
    def test_repeat_query_hits_cache_with_frozen_summary(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            first = service.posterior(OBSERVATION, num_traces=8, seed=1, timeout=60)
            second = service.posterior(OBSERVATION, num_traces=8, seed=99, timeout=60)
            assert not first.cached
            assert second.cached
            assert isinstance(second.posterior, FrozenPosterior)
            # The frozen summary reports the same marginals the fresh run did.
            assert second.posterior.extract("a").mean == pytest.approx(
                first.posterior.extract("a").mean
            )
            assert service.cache.hits == 1

    def test_different_observation_or_budget_misses(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            service.posterior(OBSERVATION, num_traces=8, timeout=60)
            other_obs = service.posterior(OBSERVATION_B, num_traces=8, timeout=60)
            other_budget = service.posterior(OBSERVATION, num_traces=12, timeout=60)
            assert not other_obs.cached
            assert not other_budget.cached
            assert service.cache.hits == 0

    def test_use_cache_false_forces_inference_and_refreshes(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            service.posterior(OBSERVATION, num_traces=8, timeout=60)
            forced = service.posterior(OBSERVATION, num_traces=8, use_cache=False, timeout=60)
            assert not forced.cached
            hit = service.posterior(OBSERVATION, num_traces=8, timeout=60)
            assert hit.cached

    def test_cache_unit_lru_and_ttl(self):
        clock = {"now": 0.0}
        cache = PosteriorCache(capacity=2, ttl=10.0, clock=lambda: clock["now"])
        frozen = Empirical([1.0, 2.0], [0.0, 0.0]).freeze()
        cache.put("a", frozen)
        cache.put("b", frozen)
        assert cache.get("a") is frozen  # refreshes LRU order
        cache.put("c", frozen)  # evicts "b" (least recently used)
        assert cache.get("b") is None
        assert cache.evictions == 1
        clock["now"] = 11.0
        assert cache.get("a") is None  # TTL expired
        assert cache.expirations == 1
        disabled = PosteriorCache(capacity=0)
        disabled.put("x", frozen)
        assert disabled.get("x") is None

    def test_fingerprint_sensitivity(self):
        base = observation_fingerprint({"obs": np.array([1.0, 2.0])}, "m", 10)
        assert observation_fingerprint({"obs": np.array([1.0, 2.0])}, "m", 10) == base
        assert observation_fingerprint({"obs": np.array([1.0, 2.1])}, "m", 10) != base
        assert observation_fingerprint({"obs": np.array([1.0, 2.0])}, "m", 11) != base
        assert observation_fingerprint({"obs": np.array([1.0, 2.0])}, "m2", 10) != base
        reshaped = observation_fingerprint({"obs": np.array([[1.0], [2.0]])}, "m", 10)
        assert reshaped != base


class TestAdmissionControl:
    def test_deadline_shedding(self, served_engine):
        model, engine = served_engine
        # The scheduler waits max_latency for co-batchable traffic; the
        # request's deadline expires first, so it must be shed, not served.
        with make_service(model, engine, max_latency=0.5) as service:
            future = service.submit(OBSERVATION, num_traces=4, deadline=0.05, use_cache=False)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            assert service.metrics.shed_deadline == 1
            assert service.scheduler.stats()["num_shed_requests"] == 1

    def test_overload_rejection(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine, queue_capacity=8) as service:
            with pytest.raises(ServiceOverloaded):
                service.submit(OBSERVATION, num_traces=16, use_cache=False)
            assert service.metrics.rejected_overload == 1

    def test_submit_after_stop_rejected(self, served_engine):
        model, engine = served_engine
        service = make_service(model, engine).start()
        service.stop()
        with pytest.raises(ServiceOverloaded):
            service.submit(OBSERVATION, num_traces=4)
        service.stop()  # idempotent

    def test_validation_errors_surface_at_submit(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            with pytest.raises(ValueError):
                service.submit({"wrong_key": 1.0}, num_traces=4)
            with pytest.raises(ValueError):
                service.submit(OBSERVATION, num_traces=4, deadline=-1.0)
            with pytest.raises(ValueError):
                service.submit(OBSERVATION, num_traces=0)


class TestConcurrentServing:
    def test_concurrent_clients_all_complete_with_coalescing(self, served_engine):
        model, engine = served_engine
        num_clients = 8
        results = [None] * num_clients
        with make_service(model, engine, max_latency=0.05, max_batch=64) as service:
            barrier = threading.Barrier(num_clients)

            def client(index):
                barrier.wait()
                observation = OBSERVATION if index % 2 == 0 else OBSERVATION_B
                results[index] = service.posterior(
                    observation, num_traces=8, seed=index, use_cache=False, timeout=60
                )

            threads = [threading.Thread(target=client, args=(i,)) for i in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = service.stats()
        assert all(result is not None for result in results)
        assert stats["completed"] == num_clients
        # 8 requests x 8 traces coalesced into far fewer cohorts than requests.
        assert stats["engine"]["num_cohorts"] < num_clients
        assert stats["mixed_cohort_fraction"] > 0
        assert stats["latency_p99_s"] >= stats["latency_p50_s"] > 0

    def test_smoke_concurrent_requests_with_cache_hits(self, served_engine):
        # The CI serving-smoke contract: an in-process server, N concurrent
        # clients (some asking about the same observation), every request
        # completes, and the repeat queries hit the cache.
        model, engine = served_engine
        num_clients = 12
        observations = [OBSERVATION, OBSERVATION_B]
        results = [None] * num_clients
        with make_service(model, engine, max_latency=0.02) as service:
            def client(index):
                results[index] = service.posterior(
                    observations[index % 2], num_traces=8, timeout=60
                )

            threads = [threading.Thread(target=client, args=(i,)) for i in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = service.stats()
        assert all(result is not None for result in results)
        assert stats["completed"] == num_clients
        assert stats["cache_hit_rate"] > 0
        assert stats["failed"] == 0

    def test_drain_on_stop_completes_inflight_requests(self, served_engine):
        model, engine = served_engine
        service = make_service(model, engine, max_latency=0.2).start()
        future = service.submit(OBSERVATION, num_traces=8, seed=2, use_cache=False)
        service.stop(drain=True)
        assert future.result(timeout=10).num_traces == 8


class TestFailurePaths:
    def test_finalize_failure_reaches_client_and_clears_registry(self, served_engine):
        # A crash while *forming* the posterior (after every trace delivered)
        # must resolve the future with the error — not leave it pending — and
        # must not leave a stale single-flight entry feeding that error to
        # every later identical query.
        model, engine = served_engine

        class NoLogQModel(FunctionModel):
            def get_trace(self, controller=None, observed_values=None, rng=None):
                trace = super().get_trace(controller, observed_values=observed_values, rng=rng)
                del trace.log_q
                return trace

        stripped = NoLogQModel(lockstep_program, name="no_log_q")
        with make_service(stripped, engine) as service:
            future = service.submit(OBSERVATION, num_traces=4, use_cache=True)
            with pytest.raises(ValueError, match="log_q"):
                future.result(timeout=30)
            assert service.metrics.failed == 1
            # The registry entry is gone: a new identical query runs fresh
            # inference (and fails the same way for this model) instead of
            # being handed the dead primary's old exception forever.
            second = service.submit(OBSERVATION, num_traces=4, use_cache=True)
            with pytest.raises(ValueError, match="log_q"):
                second.result(timeout=30)
            assert service.metrics.failed == 2

    def test_single_flight_counts_one_cache_outcome_per_request(self, served_engine):
        model, engine = served_engine
        num_clients = 6
        with make_service(model, engine, max_latency=0.05) as service:
            barrier = threading.Barrier(num_clients)
            results = [None] * num_clients

            def client(index):
                barrier.wait()
                results[index] = service.posterior(OBSERVATION, num_traces=8, timeout=60)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            metrics = service.metrics
            cache_stats = service.cache.stats()
        assert all(result is not None for result in results)
        # Exactly one cache outcome per request: hits + misses == submitted,
        # with the coalesced/caught requests as hits and the one primary as
        # the only miss.
        assert metrics.cache_hits + metrics.cache_misses == num_clients
        assert metrics.cache_misses == 1
        assert metrics.cache_hits == num_clients - 1
        # The cache's own stats agree with the serving metrics (coalesced
        # requests count as hits in both places).
        assert cache_stats["hits"] == metrics.cache_hits
        assert cache_stats["misses"] == metrics.cache_misses

    def test_remote_models_serialize_to_one_worker(self):
        from repro.ppl.model import RemoteModel
        from repro.ppx.transport import make_queue_pair

        ppl_side, _sim_side = make_queue_pair()
        remote = RemoteModel(ppl_side)
        # One unsynchronized PPX transport: the pool must never run two of
        # its cohorts concurrently, whatever the caller asked for.
        service = PosteriorService(remote, None, num_workers=4)
        assert service.workers.num_workers == 1

    def test_full_flush_reports_full_occupancy_despite_sharding(self, served_engine):
        model, engine = served_engine
        # A full 32-job flush split over 2 workers must still report the
        # flush-level occupancy (1.0), not the per-shard fraction.
        with make_service(
            model, engine, max_batch=32, max_latency=0.2, num_workers=2, shard_min=8
        ) as service:
            futures = [
                service.submit(OBSERVATION, num_traces=16, seed=i, use_cache=False)
                for i in range(2)
            ]
            for future in futures:
                future.result(timeout=60)
            stats = service.stats()
        assert stats["mean_cohort_occupancy"] == pytest.approx(1.0)


class TestFrozenPosterior:
    def test_freeze_preserves_marginal_summaries(self, served_engine):
        model, engine = served_engine
        posterior = batched_importance_sampling(
            model, OBSERVATION, num_traces=32, batch_size=32,
            network=engine.network, rng=RandomState(21),
        )
        frozen = posterior.freeze()
        assert sorted(frozen.latent_names) == ["a", "b", "c"]
        for latent in ("a", "b", "c"):
            assert frozen.extract(latent).mean == pytest.approx(posterior.extract(latent).mean)
            assert frozen.extract(latent).stddev == pytest.approx(
                posterior.extract(latent).stddev
            )
        assert frozen.log_evidence == pytest.approx(posterior.log_evidence)
        assert frozen.effective_sample_size() == pytest.approx(
            posterior.effective_sample_size()
        )
        assert len(frozen) == len(posterior)
        with pytest.raises(KeyError):
            frozen.extract("nonexistent")

    def test_frozen_posterior_pickles(self, served_engine):
        model, engine = served_engine
        posterior = batched_importance_sampling(
            model, OBSERVATION, num_traces=8, batch_size=8,
            network=engine.network, rng=RandomState(22),
        )
        frozen = posterior.freeze(latents=["a"])
        clone = pickle.loads(pickle.dumps(frozen))
        assert clone.extract("a").mean == pytest.approx(frozen.extract("a").mean)
        assert clone.latent_names == ["a"]

    def test_freeze_non_trace_empirical(self):
        emp = Empirical([1.0, 2.0, 3.0], [0.0, -1.0, -2.0], name="scalars")
        frozen = emp.freeze()
        assert frozen.latent_names == ["value"]
        assert frozen.extract("value").mean == pytest.approx(emp.mean)


class TestLifecycleAndShutdown:
    def test_thread_pool_context_manager_and_cancel(self):
        from repro.serving import CohortWorkerPool, ServingError

        executed = []
        release = threading.Event()

        def run_cohort(jobs):
            release.wait(timeout=10)
            executed.append(len(jobs))
            return list(jobs)

        class Entry:
            job = object()

        outcomes = []
        with CohortWorkerPool(run_cohort, num_workers=1, queue_capacity=4) as pool:
            # First cohort occupies the worker; the rest sit in the queue.
            for _ in range(3):
                pool.submit([Entry()], lambda e, t, err: outcomes.append(err))
            release.set()
            pool.shutdown(drain=True)
        assert outcomes == [None, None, None]
        assert pool.stats()["cohorts_executed"] == 3

        # Cancel path: queued cohorts fail with ServingError instead of
        # running (the worker is parked on the first, un-released cohort).
        release.clear()
        outcomes = []
        pool = CohortWorkerPool(run_cohort, num_workers=1, queue_capacity=4).start()
        for _ in range(3):
            pool.submit([Entry()], lambda e, t, err: outcomes.append(err))
        time.sleep(0.05)  # let the worker dequeue the first cohort
        release.set()
        pool.stop(drain=False)
        assert sum(isinstance(err, ServingError) for err in outcomes) >= 1
        assert pool.stats()["cancelled_cohorts"] >= 1

    def test_pending_requests_resolve_or_error_on_close(self, served_engine):
        # The shutdown contract: nothing submitted before stop() is ever
        # abandoned — every future resolves with a result or a ServingError.
        model, engine = served_engine
        service = make_service(model, engine, max_latency=0.5).start()
        futures = [
            service.submit(OBSERVATION, num_traces=4, seed=seed, use_cache=False)
            for seed in range(3)
        ]
        service.stop(drain=False)
        from repro.serving import ServingError

        for future in futures:
            try:
                result = future.result(timeout=10)
            except ServingError:
                continue  # resolved with the documented error: acceptable
            assert result.num_traces == 4  # or resolved with a real posterior
        assert all(future.done() for future in futures)

    def test_service_shutdown_alias_and_close(self, served_engine):
        model, engine = served_engine
        service = make_service(model, engine).start()
        service.shutdown()
        assert not service._running
        service.close()  # idempotent


class TestCacheInvalidation:
    def test_invalidate_scoped_by_model_id(self):
        cache = PosteriorCache(capacity=8)
        frozen = Empirical([1.0], [0.0]).freeze()
        cache.put("a", frozen, model_id="m1")
        cache.put("b", frozen, model_id="m1")
        cache.put("c", frozen, model_id="m2")
        assert cache.invalidate("m1") == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.get("c") is frozen
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 3

    def test_explicit_service_invalidation_forces_fresh_inference(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            first = service.posterior(OBSERVATION, num_traces=8, seed=1, timeout=60)
            assert not first.cached
            assert service.posterior(OBSERVATION, num_traces=8, timeout=60).cached
            assert service.invalidate_cache() == 1
            refreshed = service.posterior(OBSERVATION, num_traces=8, seed=1, timeout=60)
            assert not refreshed.cached

    def test_inflight_request_does_not_repollute_invalidated_cache(self, served_engine):
        # A request admitted under network generation N must not write its
        # posterior into the cache after generation N+1 invalidated it — with
        # no TTL, that stale entry would otherwise be served forever.
        model, engine = served_engine
        with make_service(model, engine, max_latency=0.2) as service:
            future = service.submit(OBSERVATION, num_traces=4, use_cache=True)
            # While the request waits out the flush latency, the network is
            # "retrained" (version bump + listener-driven invalidation).
            engine.network.notify_updated()
            assert future.result(timeout=60).num_traces == 4
            assert len(service.cache) == 0  # the old-generation result was not cached
            assert not service.posterior(OBSERVATION, num_traces=4, timeout=60).cached

    def test_retraining_the_network_invalidates_served_posteriors(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine) as service:
            service.posterior(OBSERVATION, num_traces=8, timeout=60)
            assert len(service.cache) == 1
            version_before = engine.network.version
            engine.train(model, num_traces=40, minibatch_size=20, learning_rate=1e-3)
            assert engine.network.version == version_before + 1
            assert len(service.cache) == 0  # listener dropped the stale entry
            assert not service.posterior(OBSERVATION, num_traces=8, timeout=60).cached
        # After stop() the listener is unregistered: further training must not
        # call into a stopped service.
        assert service._on_network_updated not in engine.network._update_listeners


class TestStaleWhileRevalidate:
    def test_cache_unit_stale_lookup(self):
        clock = {"now": 0.0}
        cache = PosteriorCache(capacity=4, ttl=10.0, clock=lambda: clock["now"])
        fresh_only = PosteriorCache(capacity=4, ttl=10.0, clock=lambda: clock["now"])
        frozen = Empirical([1.0], [0.0]).freeze()
        cache.put("k", frozen)
        fresh_only.put("k", frozen)
        clock["now"] = 11.0
        # Plain get: hard expiry, entry dropped.
        assert fresh_only.get("k") is None
        assert fresh_only.expirations == 1
        # allow_stale: entry kept and reported stale.
        value, stale = cache.lookup("k", allow_stale=True)
        assert value is frozen and stale
        assert cache.stats()["stale_hits"] == 1
        assert len(cache) == 1

    def test_stale_entry_served_while_refreshing(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine, cache_ttl=0.1) as service:
            first = service.posterior(OBSERVATION, num_traces=8, seed=1, timeout=60)
            assert not first.cached
            time.sleep(0.15)  # let the entry expire
            stale = service.posterior(OBSERVATION, num_traces=8, timeout=60)
            # Served immediately from the expired entry...
            assert stale.cached
            assert service.metrics.stale_served == 1
            assert service.metrics.revalidations == 1
            # ...while exactly one background refresh recomputes it.  The
            # refresh is internal: it never counts toward client completions.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and service._inflight:
                time.sleep(0.01)
            assert not service._inflight
            assert service.metrics.completed == 2  # first + stale serve only
            fresh = service.posterior(OBSERVATION, num_traces=8, timeout=60)
            assert fresh.cached
            assert service.metrics.stale_served == 1  # refreshed entry is fresh again

    def test_refresh_is_single_flight(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine, cache_ttl=0.05, max_latency=0.05) as service:
            service.posterior(OBSERVATION, num_traces=8, timeout=60)
            time.sleep(0.1)
            results = [
                service.posterior(OBSERVATION, num_traces=8, timeout=60) for _ in range(4)
            ]
            assert all(result.cached for result in results)
            # All four stale serves triggered at most one refresh.
            assert service.metrics.revalidations == 1
            assert service.metrics.stale_served == 4


class TestWorkerPoolCounters:
    """Pool counters are bumped from every worker thread; they must be exact.

    A bare ``+= 1`` is a read-modify-write the GIL interleaves at bytecode
    granularity, so concurrent workers silently lose increments.
    """

    def test_cohorts_executed_is_exact_under_concurrency(self):
        from repro.serving import CohortWorkerPool

        total = 400

        def run_cohort(jobs):
            return list(jobs)

        class Entry:
            job = object()

        done = threading.Event()
        remaining = [total]
        count_lock = threading.Lock()

        def on_done(entries, traces, error):
            with count_lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()

        with CohortWorkerPool(run_cohort, num_workers=8, queue_capacity=16) as pool:
            for _ in range(total):
                pool.submit([Entry()], on_done)
            assert done.wait(timeout=30)
        stats = pool.stats()
        assert stats["cohorts_executed"] == total
        assert stats["failed_cohorts"] == 0

    def test_failed_cohorts_counted_exactly(self):
        from repro.serving import CohortWorkerPool

        total = 100

        def run_cohort(jobs):
            raise RuntimeError("boom")

        class Entry:
            job = object()

        done = threading.Event()
        remaining = [total]
        count_lock = threading.Lock()

        def on_done(entries, traces, error):
            with count_lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()

        with CohortWorkerPool(run_cohort, num_workers=8, queue_capacity=16) as pool:
            for _ in range(total):
                pool.submit([Entry()], on_done)
            assert done.wait(timeout=30)
        stats = pool.stats()
        assert stats["failed_cohorts"] == total
        assert stats["cohorts_executed"] == 0
