"""Tests for traces, samples, trace types, pruning and address dictionaries."""

import numpy as np
import pytest

from repro.distributions import Categorical, Normal, Uniform
from repro.trace import (
    AddressDictionary,
    Sample,
    Trace,
    TraceTypeRegistry,
    prune_trace,
    pruned_size_bytes,
    restore_trace,
    trace_type_id,
)


def build_trace(values=(0.3, 1), observation=None):
    trace = Trace()
    trace.add_sample(Sample("addr/px", Uniform(-3, 3), values[0], log_prob=float(Uniform(-3, 3).log_prob(values[0])), name="px"))
    trace.add_sample(Sample("addr/channel", Categorical([0.5, 0.5]), values[1], log_prob=float(np.log(0.5)), name="channel"))
    obs_value = observation if observation is not None else np.zeros((2, 2))
    trace.add_sample(
        Sample("addr/obs", Normal(np.zeros((2, 2)), 1.0), obs_value, observed=True, log_prob=-1.0, controlled=False, name="y")
    )
    trace.freeze(result={"px": values[0]}, observation={"y": obs_value})
    return trace


class TestSample:
    def test_address_with_instance(self):
        sample = Sample("a", Normal(0, 1), 0.5, instance=3)
        assert sample.address_with_instance == "a#3"

    def test_scalar_value(self):
        assert Sample("a", None, np.array([2.5])).scalar_value() == pytest.approx(2.5)

    def test_dict_roundtrip_with_distribution(self):
        sample = Sample("a", Normal(1.0, 2.0), 0.5, log_prob=-1.2, name="x")
        rebuilt = Sample.from_dict(sample.to_dict())
        assert rebuilt.address == "a"
        assert rebuilt.distribution == Normal(1.0, 2.0)
        assert rebuilt.value == pytest.approx(0.5)
        assert rebuilt.log_prob == pytest.approx(-1.2)
        assert rebuilt.name == "x"

    def test_dict_roundtrip_array_value(self):
        sample = Sample("a", None, np.arange(4.0))
        rebuilt = Sample.from_dict(sample.to_dict(include_distribution=False))
        assert np.allclose(rebuilt.value, np.arange(4.0))

    def test_dict_without_distribution(self):
        payload = Sample("a", Normal(0, 1), 0.5).to_dict(include_distribution=False)
        assert "distribution" not in payload


class TestTrace:
    def test_structure_and_log_probs(self):
        trace = build_trace()
        assert trace.length == 2
        assert len(trace.observes) == 1
        assert trace.log_prior == pytest.approx(float(Uniform(-3, 3).log_prob(0.3)) + np.log(0.5))
        assert trace.log_likelihood == pytest.approx(-1.0)
        assert trace.log_joint == pytest.approx(trace.log_prior + trace.log_likelihood)

    def test_named_access(self):
        trace = build_trace()
        assert trace["px"] == pytest.approx(0.3)
        assert trace["channel"] == 1
        assert trace.get("missing", default=42) == 42
        with pytest.raises(KeyError):
            _ = trace["missing"]

    def test_instances_count_repeated_addresses(self):
        trace = Trace()
        for value in (0.1, 0.2, 0.3):
            trace.add_sample(Sample("loop", Uniform(0, 1), value, name="f"))
        assert [s.instance for s in trace.samples] == [0, 1, 2]
        assert trace.addresses_with_instances == ("loop#0", "loop#1", "loop#2")
        # Named access returns the last (accepted) value.
        assert trace["f"] == pytest.approx(0.3)
        assert len(trace.samples_at("loop")) == 3

    def test_trace_type_depends_only_on_addresses(self):
        a = build_trace(values=(0.3, 1))
        b = build_trace(values=(-1.0, 0))
        assert a.trace_type == b.trace_type
        c = Trace()
        c.add_sample(Sample("other", Uniform(0, 1), 0.5))
        assert c.trace_type != a.trace_type

    def test_dict_roundtrip(self):
        trace = build_trace()
        rebuilt = Trace.from_dict(trace.to_dict())
        assert rebuilt.length == trace.length
        assert rebuilt.addresses == trace.addresses
        assert rebuilt.log_prior == pytest.approx(trace.log_prior)
        assert rebuilt.log_likelihood == pytest.approx(trace.log_likelihood)


class TestTraceTypeRegistry:
    def test_ids_and_counts(self):
        registry = TraceTypeRegistry()
        first = registry.register(["a", "b"])
        second = registry.register(["a", "b"])
        third = registry.register(["a", "c"])
        assert first == second == 0
        assert third == 1
        assert registry.num_types == 2
        assert len(registry) == 2
        assert ["a", "b"] in registry
        assert registry.id_of(["a", "c"]) == 1
        top_type, count = registry.frequencies()[0]
        assert count == 2
        assert registry.addresses_of(top_type) == ("a", "b")

    def test_trace_type_id_is_stable(self):
        assert trace_type_id(["x", "y"]) == trace_type_id(["x", "y"])
        assert trace_type_id(["x", "y"]) != trace_type_id(["y", "x"])
        assert trace_type_id(["xy"]) != trace_type_id(["x", "y"])


class TestPruning:
    def test_roundtrip_without_dictionary(self):
        trace = build_trace()
        restored = restore_trace(prune_trace(trace))
        assert restored.addresses == trace.addresses
        assert restored["px"] == pytest.approx(trace["px"])
        assert restored.trace_type == trace.trace_type
        assert np.allclose(np.asarray(restored.observation["y"]), np.zeros((2, 2)))

    def test_roundtrip_with_address_dictionary(self):
        trace = build_trace()
        dictionary = AddressDictionary()
        pruned = prune_trace(trace, address_dictionary=dictionary)
        assert all("address_id" in record for record in pruned["samples"])
        restored = restore_trace(pruned, address_dictionary=dictionary)
        assert restored.addresses == trace.addresses

    def test_restore_requires_dictionary_when_used(self):
        trace = build_trace()
        dictionary = AddressDictionary()
        pruned = prune_trace(trace, address_dictionary=dictionary)
        with pytest.raises(ValueError):
            restore_trace(pruned)

    def test_log_prior_recomputed_after_restore(self):
        trace = build_trace()
        restored = restore_trace(prune_trace(trace))
        assert restored.log_prior == pytest.approx(trace.log_prior)

    def test_address_dictionary_reduces_size_for_long_addresses(self):
        # A dataset of traces sharing long (stack-frame-like) addresses: the
        # dictionary is stored once while every trace record stores only the
        # shorthand ids, which is where the paper's ~40% saving comes from.
        def make_trace():
            trace = Trace()
            for i in range(12):
                address = (
                    f"simulators/tau_decay.py:tau_decay_program:{100 + i}|"
                    f"simulators/tau_decay.py:_energy_fractions:{60 + i}"
                )
                trace.add_sample(Sample(address, Uniform(0, 1), 0.5, name=f"f{i}"))
            trace.freeze(observation={"y": 0.0})
            return trace

        traces = [make_trace() for _ in range(20)]
        dictionary = AddressDictionary()
        with_dict = sum(
            pruned_size_bytes(prune_trace(t, address_dictionary=dictionary)) for t in traces
        ) + pruned_size_bytes(dictionary.to_dict())
        without_dict = sum(pruned_size_bytes(prune_trace(t)) for t in traces)
        assert with_dict < without_dict
        # The paper reports ~40% memory reduction; require a substantial saving here.
        assert with_dict < 0.8 * without_dict

    def test_pruned_record_is_smaller_than_full_trace(self):
        trace = build_trace(observation=np.zeros((8, 8)))
        full = pruned_size_bytes(trace.to_dict())
        pruned = pruned_size_bytes(prune_trace(trace, keep_observation=False))
        assert pruned < full

    def test_address_dictionary_roundtrip(self):
        dictionary = AddressDictionary()
        first = dictionary.id_for("alpha")
        assert dictionary.id_for("alpha") == first
        assert dictionary.id_for("beta") == first + 1
        assert "alpha" in dictionary and "gamma" not in dictionary
        rebuilt = AddressDictionary.from_dict(dictionary.to_dict())
        assert rebuilt.address_for(first) == "alpha"
        assert len(rebuilt) == 2
