"""Tests for the array-parameterised batched distributions.

The load-bearing contract: ``batch.row(i)`` must be *bit-identical* — in rng
consumption, sampled values and log-densities — to the per-trace distribution
object it replaces, because the lockstep engine swaps one for the other on
the inference hot path and the seeded-equivalence guarantees of the whole
serving stack rest on that swap being invisible.
"""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.distributions import (
    BatchedCategorical,
    BatchedDistributionList,
    BatchedMixtureOfTruncatedNormals,
    BatchedNormal,
    Categorical,
    Mixture,
    Normal,
    TruncatedNormal,
)
from repro.distributions.batched import BatchedRowView


def _mixture_reference(batch, index, raw_weights):
    """The per-object Mixture that row ``index`` of ``batch`` stands in for.

    Built from the *raw* (unnormalised) weights, exactly as the proposal
    layer's per-object path does — both paths must normalise once, from the
    same input, for the bit-identity contract to hold.
    """
    if batch.bounded[index]:
        components = TruncatedNormal.batch_build(
            batch.locs[index],
            batch.scales[index],
            np.full(batch.num_components, batch.lows[index]),
            np.full(batch.num_components, batch.highs[index]),
        )
    else:
        components = [
            Normal(batch.locs[index, k], batch.scales[index, k])
            for k in range(batch.num_components)
        ]
    return Mixture(components, raw_weights[index])


@pytest.fixture(scope="module")
def mixture_case():
    rng = np.random.default_rng(3)
    batch, components = 9, 5
    locs = rng.normal(size=(batch, components))
    scales = np.abs(rng.normal(size=(batch, components))) + 0.1
    weights = np.abs(rng.normal(size=(batch, components))) + 0.05
    lows = locs.min(axis=1) - 1.0
    highs = locs.max(axis=1) + 1.0
    bounded = np.array([True] * 6 + [False] * 3)
    batched = BatchedMixtureOfTruncatedNormals(locs, scales, weights, lows, highs, bounded=bounded)
    return batched, weights


@pytest.fixture(scope="module")
def mixture_batch(mixture_case):
    return mixture_case[0]


class TestMixtureRowEquivalence:
    def test_row_samples_bit_identical_to_per_object_mixture(self, mixture_case):
        mixture_batch, raw_weights = mixture_case
        for index in range(mixture_batch.batch_size):
            reference = _mixture_reference(mixture_batch, index, raw_weights)
            rng_row, rng_ref = RandomState(100 + index), RandomState(100 + index)
            row = mixture_batch.row(index)
            for _ in range(40):
                assert float(row.sample(rng_row)) == float(reference.sample(rng_ref))

    def test_row_log_prob_bit_identical_to_per_object_mixture(self, mixture_case):
        mixture_batch, raw_weights = mixture_case
        for index in range(mixture_batch.batch_size):
            reference = _mixture_reference(mixture_batch, index, raw_weights)
            if mixture_batch.bounded[index]:
                low, high = mixture_batch.lows[index] - 0.5, mixture_batch.highs[index] + 0.5
            else:
                low = mixture_batch.locs[index].min() - 3.0
                high = mixture_batch.locs[index].max() + 3.0
            values = np.linspace(low, high, 31)
            row_lp = np.array([float(mixture_batch.row(index).log_prob(v)) for v in values])
            ref_lp = np.array([float(reference.log_prob(v)) for v in values])
            assert np.array_equal(row_lp, ref_lp)

    def test_outside_support_is_minus_inf_on_bounded_rows(self, mixture_batch):
        index = 0
        assert mixture_batch.bounded[index]
        assert float(mixture_batch.row(index).log_prob(mixture_batch.highs[index] + 1.0)) == -np.inf

    def test_bulk_rows_match_per_row_views(self, mixture_batch):
        size = mixture_batch.batch_size
        bulk = mixture_batch.sample_rows([RandomState(i) for i in range(size)])
        per_row = np.array(
            [mixture_batch.row(i).sample(RandomState(i)) for i in range(size)]
        )
        assert np.array_equal(bulk, per_row)
        assert np.array_equal(
            mixture_batch.log_prob_rows(bulk),
            np.array([float(mixture_batch.row(i).log_prob(bulk[i])) for i in range(size)]),
        )

    def test_samples_stay_inside_bounds(self, mixture_batch):
        draws = np.array(
            [
                [mixture_batch.row(i).sample(RandomState(1000 + i * 50 + d)) for d in range(20)]
                for i in range(mixture_batch.batch_size)
            ]
        )
        bounded = mixture_batch.bounded
        assert np.all(draws[bounded] >= mixture_batch.lows[bounded, None])
        assert np.all(draws[bounded] <= mixture_batch.highs[bounded, None])

    def test_materialized_row_roundtrip(self, mixture_batch):
        for index in (0, mixture_batch.batch_size - 1):
            materialized = mixture_batch.row(index).materialize()
            assert isinstance(materialized, Mixture)
            if mixture_batch.bounded[index]:
                value = 0.5 * (mixture_batch.lows[index] + mixture_batch.highs[index])
            else:
                value = float(mixture_batch.locs[index, 0])
            assert float(materialized.log_prob(value)) == float(
                mixture_batch.row(index).log_prob(value)
            )


class TestDegenerateAndEdgeCases:
    def test_one_row_batch(self):
        raw_weights = np.array([[0.6, 0.4]])
        batch = BatchedMixtureOfTruncatedNormals(
            [[0.0, 1.0]], [[0.5, 0.5]], raw_weights, [-2.0], [2.0]
        )
        assert batch.batch_size == 1
        reference = _mixture_reference(batch, 0, raw_weights)
        rng_a, rng_b = RandomState(5), RandomState(5)
        assert float(batch.row(0).sample(rng_a)) == float(reference.sample(rng_b))
        assert np.array_equal(
            batch.sample_rows([RandomState(6)]),
            np.array([batch.row(0).sample(RandomState(6))]),
        )

    def test_far_tail_rows_have_finite_density(self):
        # Z underflows for the far-tail row; log_prob must stay finite inside
        # the interval (the same 1e-300 floor TruncatedNormal applies).
        batch = BatchedMixtureOfTruncatedNormals(
            [[0.0, 0.0], [0.0, 0.0]], [[1.0, 1.0], [1.0, 1.0]],
            [[0.5, 0.5], [0.5, 0.5]], [40.0, -1.0], [41.0, 1.0]
        )
        assert np.isfinite(float(batch.row(0).log_prob(40.5)))
        assert np.isfinite(float(batch.row(1).log_prob(0.0)))

    def test_row_index_validation(self, mixture_batch):
        with pytest.raises(IndexError):
            mixture_batch.row(mixture_batch.batch_size)
        with pytest.raises(IndexError):
            mixture_batch.row(-1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BatchedMixtureOfTruncatedNormals([[0.0]], [[0.0]], [[1.0]], [-1.0], [1.0])
        with pytest.raises(ValueError):
            BatchedMixtureOfTruncatedNormals([[0.0]], [[1.0]], [[-1.0]], [-1.0], [1.0])
        with pytest.raises(ValueError):
            BatchedMixtureOfTruncatedNormals([[0.0]], [[1.0]], [[1.0]], [1.0], [-1.0])
        with pytest.raises(ValueError):
            BatchedNormal([0.0, 1.0], [1.0, -1.0])
        with pytest.raises(ValueError):
            BatchedCategorical([[0.5, -0.5]])
        with pytest.raises(ValueError):
            BatchedCategorical([0.5, 0.5])  # not a matrix

    def test_sample_rows_wrong_rng_count(self, mixture_batch):
        with pytest.raises(ValueError):
            mixture_batch.sample_rows([RandomState(0)] * (mixture_batch.batch_size + 1))


class TestBatchedNormal:
    def test_rows_match_per_object_normals(self):
        rng = np.random.default_rng(1)
        locs = rng.normal(size=6)
        scales = np.abs(rng.normal(size=6)) + 0.1
        batch = BatchedNormal(locs, scales)
        for index in range(6):
            reference = Normal(locs[index], scales[index])
            assert float(batch.row(index).sample(RandomState(index))) == float(
                reference.sample(RandomState(index))
            )
            assert np.array_equal(batch.row(index).log_prob(0.3), reference.log_prob(0.3))
        bulk = batch.sample_rows([RandomState(i) for i in range(6)])
        assert np.array_equal(
            bulk, np.array([batch.row(i).sample(RandomState(i)) for i in range(6)])
        )
        assert np.allclose(
            batch.log_prob_rows(bulk),
            [float(Normal(locs[i], scales[i]).log_prob(bulk[i])) for i in range(6)],
        )


class TestBatchedCategorical:
    def test_rows_match_per_object_categoricals(self):
        rng = np.random.default_rng(2)
        probs = np.abs(rng.normal(size=(5, 4))) + 0.01
        batch = BatchedCategorical(probs)
        for index in range(5):
            reference = Categorical(probs[index])
            draws_row = [batch.row(index).sample(RandomState(index * 7 + d)) for d in range(25)]
            draws_ref = [reference.sample(RandomState(index * 7 + d)) for d in range(25)]
            assert draws_row == draws_ref
            for value in (-1, 0, 3, 4):
                assert np.array_equal(
                    batch.row(index).log_prob(value), reference.log_prob(value)
                )

    def test_bulk_log_prob_handles_out_of_range(self):
        batch = BatchedCategorical([[0.5, 0.5], [0.2, 0.8]])
        out = batch.log_prob_rows([1, 5])
        assert np.isfinite(out[0]) and out[1] == -np.inf

    def test_row_is_discrete(self):
        batch = BatchedCategorical([[0.5, 0.5]])
        assert batch.row(0).discrete


class TestBatchedDistributionList:
    def test_fallback_wraps_per_object_distributions(self):
        distributions = [Normal(0.0, 1.0), Normal(2.0, 0.5)]
        batch = BatchedDistributionList(distributions)
        assert batch.row(0) is distributions[0]
        assert batch.row_distribution(1) is distributions[1]
        bulk = batch.sample_rows([RandomState(0), RandomState(1)])
        assert np.array_equal(
            bulk,
            [distributions[0].sample(RandomState(0)), distributions[1].sample(RandomState(1))],
        )
        assert np.allclose(
            batch.log_prob_rows(bulk),
            [float(d.log_prob(v)) for d, v in zip(distributions, bulk)],
        )
        with pytest.raises(ValueError):
            BatchedDistributionList([])


class TestRowViewSurface:
    def test_row_view_moments_and_serialisation_via_materialize(self, mixture_case):
        mixture_batch, raw_weights = mixture_case
        index = 1
        view = mixture_batch.row(index)
        assert isinstance(view, BatchedRowView)
        reference = _mixture_reference(mixture_batch, index, raw_weights)
        assert view.mean == pytest.approx(reference.mean)
        assert view.variance == pytest.approx(reference.variance)
        # Serialisation: identical components; weights agree up to Mixture's
        # re-normalisation of the already-normalised row (1 ulp).
        view_dict, ref_dict = view.to_dict(), reference.to_dict()
        assert view_dict["components"] == ref_dict["components"]
        assert view_dict["weights"] == pytest.approx(ref_dict["weights"], rel=1e-12)

    def test_row_view_sized_sampling_delegates(self, mixture_batch):
        draws = mixture_batch.row(0).sample(RandomState(9), size=8)
        assert np.asarray(draws).shape == (8,)


class TestChoiceKernels:
    """The inverse-CDF choice kernel must be a bit-exact drop-in for percall.

    ``Generator.choice(p=...)`` is itself inverse-CDF sampling on a single
    ``random()`` draw, so the vectorised kernel can (and must) reproduce both
    the drawn index and the post-draw generator state exactly — which is what
    lets it default on without perturbing any seeded posterior.
    """

    def _categorical_pair(self):
        rng = np.random.default_rng(11)
        probs = np.abs(rng.normal(size=(7, 5))) + 0.01
        return (
            BatchedCategorical(probs, choice_kernel="inverse_cdf"),
            BatchedCategorical(probs, choice_kernel="percall"),
        )

    def test_categorical_row_draws_and_stream_state_identical(self):
        fast, reference = self._categorical_pair()
        for index in range(fast.batch_size):
            for seed in range(10):
                rng_fast, rng_ref = RandomState(seed), RandomState(seed)
                assert fast.row(index).sample(rng_fast) == reference.row(index).sample(rng_ref)
                # Stream compatibility: both kernels consumed exactly one
                # random() draw, leaving the generators in the same state.
                state_fast = rng_fast.generator.bit_generator.state
                state_ref = rng_ref.generator.bit_generator.state
                assert state_fast == state_ref

    def test_categorical_bulk_draws_identical(self):
        fast, reference = self._categorical_pair()
        rngs_fast = [RandomState(3 * i + 1) for i in range(fast.batch_size)]
        rngs_ref = [RandomState(3 * i + 1) for i in range(fast.batch_size)]
        assert np.array_equal(fast.sample_rows(rngs_fast), reference.sample_rows(rngs_ref))

    def _mixture_pair(self):
        rng = np.random.default_rng(12)
        batch, components = 8, 4
        locs = rng.normal(size=(batch, components))
        scales = np.abs(rng.normal(size=(batch, components))) + 0.1
        weights = np.abs(rng.normal(size=(batch, components))) + 0.05
        lows = locs.min(axis=1) - 0.5
        highs = locs.max(axis=1) + 0.5
        bounded = np.array([True] * 5 + [False] * 3)
        build = lambda kernel: BatchedMixtureOfTruncatedNormals(
            locs, scales, weights, lows, highs, bounded=bounded, choice_kernel=kernel
        )
        return build("inverse_cdf"), build("percall")

    def test_mixture_row_draws_and_stream_state_identical(self):
        fast, reference = self._mixture_pair()
        for index in range(fast.batch_size):
            for seed in range(10):
                rng_fast, rng_ref = RandomState(seed), RandomState(seed)
                assert fast.row(index).sample(rng_fast) == reference.row(index).sample(rng_ref)
                state_fast = rng_fast.generator.bit_generator.state
                state_ref = rng_ref.generator.bit_generator.state
                assert state_fast == state_ref

    def test_mixture_bulk_draws_identical(self):
        fast, reference = self._mixture_pair()
        rngs_fast = [RandomState(5 * i + 2) for i in range(fast.batch_size)]
        rngs_ref = [RandomState(5 * i + 2) for i in range(fast.batch_size)]
        assert np.array_equal(fast.sample_rows(rngs_fast), reference.sample_rows(rngs_ref))

    def test_inverse_cdf_matches_per_object_distributions(self):
        # Transitivity check straight against the per-object reference the
        # engine equivalence rests on: Categorical and Mixture objects.
        rng = np.random.default_rng(13)
        probs = np.abs(rng.normal(size=(4, 6))) + 0.01
        fast = BatchedCategorical(probs)  # default kernel: inverse_cdf
        assert fast.choice_kernel == "inverse_cdf"
        for index in range(4):
            reference = Categorical(probs[index])
            for seed in range(8):
                assert fast.row(index).sample(RandomState(seed)) == reference.sample(
                    RandomState(seed)
                )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            BatchedCategorical([[0.5, 0.5]], choice_kernel="magic")


class TestRowGatheredNdtriSampling:
    """Regression guard for the row-batched truncated-normal inversion.

    ``sample_rows`` inverts every bounded row's quantile through one clipped
    ``ndtri`` call over row-gathered arrays (the ROADMAP leftover).  The
    contract is the per-row kernel's: identical outputs AND identical
    generator states afterwards, for any mix of bounded/unbounded rows.
    """

    @staticmethod
    def _mixed_batch(choice_kernel=None):
        rng = np.random.default_rng(11)
        batch, components = 12, 4
        locs = rng.normal(size=(batch, components))
        scales = np.abs(rng.normal(size=(batch, components))) + 0.1
        weights = np.abs(rng.normal(size=(batch, components))) + 0.05
        lows = locs.min(axis=1) - 0.5
        highs = locs.max(axis=1) + 0.5
        bounded = (np.arange(batch) % 3) != 0  # interleaved bounded/unbounded
        return BatchedMixtureOfTruncatedNormals(
            locs, scales, weights, lows, highs, bounded=bounded, choice_kernel=choice_kernel
        )

    @pytest.mark.parametrize("choice_kernel", ["inverse_cdf", "percall"])
    def test_bulk_outputs_and_rng_states_match_per_row_kernel(self, choice_kernel):
        batch = self._mixed_batch(choice_kernel)
        size = batch.batch_size
        bulk_rngs = [RandomState(500 + i) for i in range(size)]
        row_rngs = [RandomState(500 + i) for i in range(size)]
        bulk = batch.sample_rows(bulk_rngs)
        per_row = np.array([batch.row(i).sample(row_rngs[i]) for i in range(size)])
        assert np.array_equal(bulk, per_row)
        # Generator state must be untouched by the batching: the next draw of
        # every stream agrees bit for bit with the per-row kernel's.
        for bulk_rng, row_rng in zip(bulk_rngs, row_rngs):
            assert bulk_rng.generator.bit_generator.state == row_rng.generator.bit_generator.state
            assert bulk_rng.random() == row_rng.random()

    def test_all_bounded_and_all_unbounded_batches(self):
        rng = np.random.default_rng(12)
        locs = rng.normal(size=(5, 3))
        scales = np.abs(rng.normal(size=(5, 3))) + 0.2
        weights = np.ones((5, 3))
        for bounded in (np.ones(5, dtype=bool), np.zeros(5, dtype=bool)):
            batch = BatchedMixtureOfTruncatedNormals(
                locs, scales, weights, locs.min(axis=1) - 1, locs.max(axis=1) + 1, bounded=bounded
            )
            bulk = batch.sample_rows([RandomState(40 + i) for i in range(5)])
            per_row = np.array([batch.row(i).sample(RandomState(40 + i)) for i in range(5)])
            assert np.array_equal(bulk, per_row)


class TestFromDistributions:
    """`from_distributions` packs per-trace objects into (B, K) arrays."""

    def test_mixture_roundtrip_is_bit_identical(self, mixture_case):
        mixture_batch, _ = mixture_case
        rows = [mixture_batch.row_distribution(i) for i in range(mixture_batch.batch_size)]
        packed = BatchedMixtureOfTruncatedNormals.from_distributions(rows)
        assert packed.batch_size == mixture_batch.batch_size
        assert np.array_equal(packed.bounded, mixture_batch.bounded)
        for index in range(packed.batch_size):
            assert float(packed.row(index).sample(RandomState(index))) == float(
                rows[index].sample(RandomState(index))
            )
            value = float(np.clip(0.3, packed.lows[index], packed.highs[index]))
            assert np.array_equal(packed.row(index).log_prob(value), rows[index].log_prob(value))

    def test_bare_normals_and_truncated_normals_pack_as_k1(self):
        from repro.distributions import TruncatedNormal

        packed = BatchedMixtureOfTruncatedNormals.from_distributions(
            [Normal(0.0, 1.0), TruncatedNormal(0.5, 2.0, -1.0, 1.0)]
        )
        assert packed.num_components == 1
        assert list(packed.bounded) == [False, True]

    def test_normal_and_categorical_packing(self):
        normals = [Normal(0.1, 1.0), Normal(-2.0, 0.5)]
        packed_normal = BatchedNormal.from_distributions(normals)
        for i, reference in enumerate(normals):
            assert float(packed_normal.row(i).sample(RandomState(i))) == float(
                reference.sample(RandomState(i))
            )
        categoricals = [Categorical([0.2, 0.8]), Categorical([0.7, 0.3])]
        packed_cat = BatchedCategorical.from_distributions(categoricals)
        assert np.array_equal(packed_cat.probs, np.stack([c.probs for c in categoricals]))

    def test_invalid_inputs_rejected(self):
        from repro.distributions import TruncatedNormal

        with pytest.raises(ValueError):
            BatchedCategorical.from_distributions([Categorical([0.5, 0.5]), Categorical([1, 1, 1])])
        with pytest.raises(ValueError):
            BatchedCategorical.from_distributions([Normal(0, 1)])
        with pytest.raises(ValueError):
            BatchedNormal.from_distributions([Categorical([0.5, 0.5])])
        with pytest.raises(ValueError):
            # vector parameters must fail loudly as ValueError, not TypeError
            BatchedNormal.from_distributions([Normal(0.0, np.array([1.0, 2.0]))])
        with pytest.raises(ValueError):
            BatchedMixtureOfTruncatedNormals.from_distributions(
                [Normal(np.array([0.0, 1.0]), np.array([1.0, 2.0]))]
            )
        with pytest.raises(ValueError):
            BatchedMixtureOfTruncatedNormals.from_distributions([Categorical([0.5, 0.5])])
        with pytest.raises(ValueError):
            # rows must share a component count
            BatchedMixtureOfTruncatedNormals.from_distributions(
                [Normal(0.0, 1.0), Mixture([Normal(0, 1), Normal(1, 1)], [0.5, 0.5])]
            )
        with pytest.raises(ValueError):
            # truncated components of one row must share their interval
            BatchedMixtureOfTruncatedNormals.from_distributions(
                [
                    Mixture(
                        [TruncatedNormal(0, 1, -1, 1), TruncatedNormal(0, 1, -2, 2)],
                        [0.5, 0.5],
                    )
                ]
            )
