"""Regression tests for importance-weight accounting, train/inference
information-flow alignment, and Empirical.mode aggregation.

Each test here fails against the pre-fix code:

1. the proposal branch of ``importance_sampling`` used the controller's
   controlled-draws-only ``log_q`` while ``log_joint`` includes uncontrolled
   draws' prior terms, so the terms failed to cancel;
2. ``InferenceNetwork._sub_minibatch_loss`` carried a stale previous-sample
   embedding across a skipped (frozen/discarded) address, while the inference
   sessions reset it to zeros after a prior fallback;
3. ``Empirical.mode`` took the argmax over raw per-trace log-weights without
   aggregating duplicate values.
"""

import numpy as np
import pytest

from repro import ppl
from repro.common.rng import RandomState
from repro.distributions import Normal
from repro.ppl import FunctionModel
from repro.ppl.empirical import Empirical
from repro.ppl.inference import batched_importance_sampling, run_importance_sampling
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.ppl.nn.inference_network import InferenceNetwork


def uncontrolled_program():
    """A model with an uncontrolled (``control=False``) latent draw."""
    mu = ppl.sample(Normal(0.0, 1.0), name="mu")
    noise = ppl.sample(Normal(0.0, 0.7), name="noise", control=False)
    ppl.observe(Normal(mu + noise, 0.5), name="obs")
    return mu


class TestUncontrolledDrawWeightAccounting:
    """Fix 1: both IS branches use ExecutionState-level log_q accounting."""

    def test_proposal_branch_cancels_uncontrolled_prior_terms(self):
        model = FunctionModel(uncontrolled_program, name="uncontrolled")

        def prior_as_proposal(address, instance, prior, state):
            return prior

        posterior = run_importance_sampling(
            model, {"obs": 0.3}, num_traces=40, proposal_provider=prior_as_proposal, rng=RandomState(0)
        )
        # Sampling from the prior through the *proposal* branch must reduce to
        # likelihood weighting: every prior term — including the uncontrolled
        # noise draw's — cancels.
        for trace, log_weight in zip(posterior.values, posterior.log_weights):
            assert log_weight == pytest.approx(trace.log_likelihood, abs=1e-10)

    def test_prior_branch_matches_likelihood_weighting(self):
        model = FunctionModel(uncontrolled_program, name="uncontrolled")
        posterior = run_importance_sampling(model, {"obs": 0.3}, num_traces=40, rng=RandomState(1))
        for trace, log_weight in zip(posterior.values, posterior.log_weights):
            assert log_weight == pytest.approx(trace.log_likelihood, abs=1e-10)

    def test_batched_engine_uses_the_same_accounting(self):
        model = FunctionModel(uncontrolled_program, name="uncontrolled")
        posterior = batched_importance_sampling(
            model, {"obs": 0.3}, num_traces=16, batch_size=8, network=None, rng=RandomState(2)
        )
        for trace, log_weight in zip(posterior.values, posterior.log_weights):
            assert log_weight == pytest.approx(trace.log_likelihood, abs=1e-10)

    def test_model_without_log_q_is_reconstructed_not_silently_wrong(self):
        # A Model subclass that forgets to record trace.log_q must not fall
        # back to prior-only accounting under a proposal provider.
        class NoLogQModel(FunctionModel):
            def get_trace(self, controller=None, observed_values=None, rng=None):
                trace = super().get_trace(controller, observed_values=observed_values, rng=rng)
                del trace.log_q
                return trace

        model = NoLogQModel(uncontrolled_program, name="no_log_q")

        def off_prior_proposal(address, instance, prior, state):
            return Normal(0.5, 1.3)

        posterior = run_importance_sampling(
            model, {"obs": 0.3}, num_traces=10,
            proposal_provider=off_prior_proposal, rng=RandomState(6),
        )
        for trace, log_weight in zip(posterior.values, posterior.log_weights):
            mu = trace["mu"]
            expected = (
                trace.log_joint
                - float(Normal(0.5, 1.3).log_prob(mu))
                - float(Normal(0.0, 0.7).log_prob(trace["noise"]))
            )
            assert log_weight == pytest.approx(expected, abs=1e-10)


class TestDiscardedAddressEmbeddingAlignment:
    """Fix 2: the training loss resets prev_embed across skipped addresses."""

    def test_loss_matches_inference_session_across_discarded_address(self, small_config):
        network = InferenceNetwork(
            observation_embedding=ObservationEmbeddingFC(
                input_dim=2, embedding_dim=small_config.observation_embedding_dim
            ),
            config=small_config,
            observe_key="obs",
            rng=RandomState(0),
        )
        prior = Normal(0.0, 1.0)
        # Layers exist for addr_1 and addr_3 only; addr_2 is discarded by the
        # frozen network, exactly as in the offline freeze-and-discard mode.
        network._create_layers("addr_1", prior)
        network._create_layers("addr_3", prior)
        network.freeze_architecture()

        def program():
            x1 = ppl.sample(Normal(0.0, 1.0), name="x1", address="addr_1")
            x2 = ppl.sample(Normal(0.0, 1.0), name="x2", address="addr_2")
            x3 = ppl.sample(Normal(0.0, 1.0), name="x3", address="addr_3")
            ppl.observe(Normal(np.array([x1 + x3, x2]), 0.5), name="obs")
            return x1

        model = FunctionModel(program, name="three_address")
        trace = model.get_trace(rng=RandomState(1))
        loss = network.loss([trace])

        # Reference: replay the same values through the inference-time session,
        # whose fallback at addr_2 resets the previous-sample embedding.
        values = [s.value for s in trace.samples]
        session = network.inference_session(np.asarray(trace.observation["obs"], dtype=float))
        d1 = session.proposal("addr_1", trace.samples[0].distribution, None)
        assert session.proposal("addr_2", trace.samples[1].distribution, values[0]) is None
        d3 = session.proposal("addr_3", trace.samples[2].distribution, values[1])
        expected = -(float(d1.log_prob(values[0])) + float(d3.log_prob(values[2])))
        assert loss.item() == pytest.approx(expected, abs=1e-8)


class TestModeAggregatesDuplicates:
    """Fix 3: mode() aggregates weights per unique value before the argmax."""

    def test_duplicate_values_outweigh_single_heaviest(self):
        # Value 1.0 carries 0.6 total mass but its heaviest single trace
        # (0.35) is lighter than value 0.0's (0.4).
        emp = Empirical([0.0, 1.0, 1.0], log_weights=np.log([0.4, 0.35, 0.25]))
        assert emp.mode() == pytest.approx(1.0)

    def test_discrete_mode_matches_categorical_probabilities(self):
        emp = Empirical([0, 1, 1, 2], log_weights=[0.0, 0.0, 0.0, np.log(2.0)])
        probs = emp.categorical_probabilities()
        assert emp.mode() == max(probs, key=probs.get)

    def test_resampled_mode_reflects_aggregated_mass(self, rng):
        emp = Empirical([0.0, 1.0], log_weights=np.log([0.25, 0.75]))
        resampled = emp.resample(400, rng=rng)
        assert resampled.mode() == pytest.approx(1.0)

    def test_unhashable_values_aggregate_by_identity(self):
        heavy, duplicated = object(), object()
        values = [heavy, duplicated, duplicated]
        emp = Empirical(values, log_weights=np.log([0.4, 0.35, 0.25]))
        assert emp.mode() is duplicated

    def test_dict_values_do_not_crash(self):
        shared = {"a": 2}
        emp = Empirical([{"a": 1}, shared, shared], log_weights=np.log([0.4, 0.35, 0.25]))
        assert emp.mode() is shared


class TestJobBodiesUseTheSeededCore:
    """Regression for the linter-surfaced RNG-ownership finding: a function
    reachable from a dispatched job body (the distributed rank body) used the
    ``rng or get_rng()`` entry-point fallback, i.e. a job could in principle
    default its own generator from a process-global stream.  The fallback now
    lives only in the top-level entry point; job bodies call the seeded core,
    which refuses to run without an explicit stream."""

    def test_seeded_core_requires_an_explicit_stream(self):
        from repro.ppl.inference.batched import batched_importance_sampling_seeded

        model = FunctionModel(uncontrolled_program)
        with pytest.raises(ValueError, match="explicit rng"):
            batched_importance_sampling_seeded(
                model, {"obs": 1.0}, num_traces=4, batch_size=2, rng=None
            )

    def test_entry_point_delegates_bit_identically(self):
        from repro.ppl.inference.batched import batched_importance_sampling_seeded

        model = FunctionModel(uncontrolled_program)
        via_entry = batched_importance_sampling(
            model, {"obs": 1.0}, num_traces=8, batch_size=4, rng=RandomState(3)
        )
        via_core = batched_importance_sampling_seeded(
            model, {"obs": 1.0}, num_traces=8, batch_size=4, rng=RandomState(3)
        )
        np.testing.assert_array_equal(via_entry.log_weights, via_core.log_weights)
        assert [t["mu"] for t in via_entry.values] == [t["mu"] for t in via_core.values]
