"""Tests for the packed-minibatch vectorised training pipeline.

The load-bearing contract mirrors PR 3's batched-proposal contract, on the
training side: scoring a sub-minibatch through packed array inputs
(``vectorized_loss=True``, the default) must be **bit-identical** — in loss
value and in every parameter gradient — to the retained per-object reference
path (``vectorized_loss=False``), because the packed path is a
representation swap, not different math.  On top of that sit the offline
epoch schedule (sorted + token-budgeted minibatches, cached packs) and the
bookkeeping fixes that rode along (sub-minibatch counter, polymorph
fast-path).
"""

import numpy as np
import pytest

from repro import ppl
from repro.common.config import Config
from repro.common.rng import RandomState
from repro.data.packing import (
    PackedEpochPlan,
    pack_minibatch,
    pack_sub_minibatch,
)
from repro.distributions import Categorical, Normal, Uniform
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.ppl.nn.inference_network import InferenceNetwork


def build_network(config, input_dim=4, vectorized_loss=True, seed=0):
    return InferenceNetwork(
        observation_embedding=ObservationEmbeddingFC(
            input_dim=input_dim, embedding_dim=config.observation_embedding_dim
        ),
        config=config,
        observe_key="obs",
        rng=RandomState(seed),
        vectorized_loss=vectorized_loss,
    )


def variable_program():
    """Mixed trace types, Categorical + bounded-Uniform priors."""
    n = sample(Categorical([0.4, 0.4, 0.2]), name="n")
    total = 0.0
    for i in range(int(n) + 1):
        total += sample(Uniform(-2.0, 2.0), name=f"x{i}", address=f"x{i}")
    scale = sample(Uniform(0.5, 1.5), name="scale", address="scale")
    observe(Normal(np.array([total, scale * total, float(n), total - scale]), 0.3), name="obs")
    return total


def loss_and_grads(network, traces):
    for p in network.parameters():
        p.grad = None
    loss = network.loss(traces)
    loss.backward()
    grads = {
        name: p.grad.copy() for name, p in network.named_parameters() if p.grad is not None
    }
    return loss.item(), grads


def assert_paths_bit_identical(network, traces):
    """Both loss paths on one network: same loss, same gradients, bitwise."""
    previous = network.vectorized_loss
    try:
        network.vectorized_loss = True
        packed_loss, packed_grads = loss_and_grads(network, traces)
        network.vectorized_loss = False
        reference_loss, reference_grads = loss_and_grads(network, traces)
    finally:
        network.vectorized_loss = previous
    assert packed_loss == reference_loss
    assert packed_grads.keys() == reference_grads.keys()
    for name in reference_grads:
        assert np.array_equal(packed_grads[name], reference_grads[name]), name


class TestLossEquivalence:
    def test_mixed_trace_types_and_prior_families(self, small_config, rng):
        """Categorical + bounded-Uniform priors across several trace types."""
        model = FunctionModel(variable_program, name="variable")
        network = build_network(small_config)
        traces = model.prior_traces(24, rng=rng)
        assert len({t.trace_type for t in traces}) > 1
        network.polymorph(traces)
        assert_paths_bit_identical(network, traces)

    def test_single_trace_degenerate_group(self, small_config, mixed_model, rng):
        """B=1 groups must survive packing (shape edge of every array path)."""
        network = build_network(small_config)
        traces = mixed_model.prior_traces(3, rng=rng)
        network.polymorph(traces)
        assert_paths_bit_identical(network, traces[:1])

    def test_discarded_address_resets_prev_embedding(self, small_config):
        """Frozen-network skip steps zero the previous-sample embedding in
        both paths (the PR 1 information-flow fix must survive packing)."""
        network = build_network(small_config, input_dim=2)
        prior = Normal(0.0, 1.0)
        network._create_layers("addr_1", prior)
        network._create_layers("addr_3", prior)
        network.freeze_architecture()

        def program():
            x1 = ppl.sample(Normal(0.0, 1.0), name="x1", address="addr_1")
            x2 = ppl.sample(Normal(0.0, 1.0), name="x2", address="addr_2")
            x3 = ppl.sample(Normal(0.0, 1.0), name="x3", address="addr_3")
            ppl.observe(Normal(np.array([x1 + x3, x2]), 0.5), name="obs")
            return x1

        model = FunctionModel(program, name="three_address")
        traces = [model.get_trace(rng=RandomState(100 + i)) for i in range(5)]
        assert_paths_bit_identical(network, traces)

    def test_loss_packed_matches_loss(self, small_config, mixed_model, rng):
        """Pre-built packs score identically to packing inside loss()."""
        network = build_network(small_config)
        traces = mixed_model.prior_traces(10, rng=rng)
        network.polymorph(traces)
        direct = network.loss(traces).item()
        packed = network.loss_packed(pack_minibatch(traces, observe_key="obs")).item()
        assert packed == direct

    def test_loss_packed_requires_packs(self, small_config):
        network = build_network(small_config)
        with pytest.raises(ValueError):
            network.loss_packed([])

    def test_offline_training_histories_identical(self, rng):
        """End-to-end: packed and reference engines under the same sorted
        schedule and seeds produce the same loss curve."""
        config = Config(
            observation_shape=(4, 5, 5),
            lstm_hidden=16,
            lstm_stacks=1,
            proposal_mixture_components=2,
            observation_embedding_dim=8,
            address_embedding_dim=4,
            sample_embedding_dim=3,
        )
        model = FunctionModel(variable_program, name="variable")
        dataset = model.prior_traces(60, rng=rng)

        def run(vectorized_loss):
            engine = InferenceCompilation(
                config=config,
                observation_embedding=ObservationEmbeddingFC(
                    input_dim=4, embedding_dim=8, rng=RandomState(1)
                ),
                observe_key="obs",
                rng=RandomState(7),
            )
            engine.network.vectorized_loss = vectorized_loss
            return engine.train(
                dataset=dataset, num_traces=240, minibatch_size=12, learning_rate=3e-3
            )

        packed_history = run(True)
        reference_history = run(False)
        assert packed_history.losses == reference_history.losses


class TestPacking:
    def test_pack_sub_minibatch_rejects_mixed_types(self, small_config, rng):
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(30, rng=rng)
        by_type = {}
        for trace in traces:
            by_type.setdefault(trace.trace_type, trace)
        assert len(by_type) > 1
        with pytest.raises(ValueError):
            pack_sub_minibatch(list(by_type.values())[:2])

    def test_pack_sub_minibatch_requires_traces(self):
        with pytest.raises(ValueError):
            pack_sub_minibatch([])

    def test_packed_arrays_match_trace_contents(self, mixed_model, rng):
        traces = mixed_model.prior_traces(6, rng=rng)
        pack = pack_sub_minibatch(traces, observe_key="obs")
        assert pack.batch_size == 6
        assert pack.observations.shape == (6, 4)
        # mu step: bounded-Uniform geometry; k step: categorical indices + (B, K) prior probs
        mu_step, k_step = pack.steps
        assert mu_step.geometry is not None
        assert np.all(mu_step.geometry.bounded)
        assert np.array_equal(mu_step.geometry.lows, np.full(6, -2.0))
        assert mu_step.values_column.shape == (6, 1)
        assert k_step.indices is not None
        assert k_step.indices.dtype == np.int64
        packed_priors = k_step.packed_priors()
        assert packed_priors is not None
        assert packed_priors.probs.shape == (6, 3)
        assert k_step.packed_priors() is packed_priors  # built once, cached
        assert np.array_equal(
            k_step.indices, np.array([t["k"] for t in traces], dtype=np.int64)
        )

    def test_packed_priors_cover_the_array_families(self, rng):
        from repro.distributions import (
            BatchedMixtureOfTruncatedNormals,
            BatchedNormal,
            TruncatedNormal,
        )

        def program():
            a = sample(Normal(0.0, 1.0), name="a", address="a")
            b = sample(TruncatedNormal(0.0, 1.0, -1.0, 1.0), name="b", address="b")
            c = sample(Uniform(0.0, 1.0), name="c", address="c")
            observe(Normal(np.array([a + b, c]), 1.0), name="obs")

        traces = FunctionModel(program, name="families").prior_traces(3, rng=rng)
        pack = pack_sub_minibatch(traces, observe_key="obs")
        a_step, b_step, c_step = pack.steps
        assert isinstance(a_step.packed_priors(), BatchedNormal)
        assert isinstance(b_step.packed_priors(), BatchedMixtureOfTruncatedNormals)
        assert b_step.packed_priors().num_components == 1
        # Uniform has no batched-distribution form; its support is geometry.
        assert c_step.packed_priors() is None
        assert c_step.geometry is not None and c_step.geometry.all_bounded

    def test_packed_priors_survive_pickling(self, mixed_model, rng):
        """The lazy-build sentinel must not leak through pickling: an
        unpickled pack builds (or re-uses) real packed priors, never the
        copied sentinel object."""
        import pickle

        pack = pack_sub_minibatch(mixed_model.prior_traces(4, rng=rng), observe_key="obs")
        unbuilt = pickle.loads(pickle.dumps(pack))
        packed = unbuilt.steps[1].packed_priors()
        assert packed is not None and packed.probs.shape == (4, 3)
        pack.steps[1].packed_priors()  # build, then pickle the built cache
        rebuilt = pickle.loads(pickle.dumps(pack))
        assert rebuilt.steps[1].packed_priors().probs.shape == (4, 3)

    def test_pack_minibatch_groups_by_type(self, rng):
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(30, rng=rng)
        packs = pack_minibatch(traces, observe_key="obs")
        assert len(packs) == len({t.trace_type for t in traces})
        assert sum(p.batch_size for p in packs) == len(traces)


class TestEpochPlan:
    def test_plan_covers_dataset_each_epoch(self, rng):
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(40, rng=rng)
        plan = PackedEpochPlan(traces, minibatch_size=8, observe_key="obs")
        scheduled = []
        for _ in range(len(plan)):
            scheduled.extend(plan.batches[plan.next_batch_id(rng)])
        assert sorted(scheduled) == list(range(len(traces)))
        assert plan.epochs_started == 1
        plan.next_batch_id(rng)
        assert plan.epochs_started == 2

    def test_sorted_plan_minibatches_are_mostly_single_type(self, rng):
        """The point of sorting: far fewer sub-minibatches than random draws."""
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(60, rng=rng)
        num_types = len({t.trace_type for t in traces})
        assert num_types > 1
        plan = PackedEpochPlan(traces, minibatch_size=12, observe_key="obs")
        group_counts = [len(plan.packs(b)) for b in range(len(plan))]
        # Sorted chunks touch a type boundary at most once per batch.
        assert max(group_counts) <= 2
        assert sum(group_counts) <= len(plan) + num_types - 1

    def test_packs_are_cached_across_epochs(self, rng):
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(20, rng=rng)
        plan = PackedEpochPlan(traces, minibatch_size=5, observe_key="obs")
        first = plan.packs(0)
        assert plan.packs(0) is first

    def test_cache_packs_false_rebuilds_per_visit(self, rng):
        """The constant-memory opt-out: nothing retained between visits."""
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(20, rng=rng)
        plan = PackedEpochPlan(traces, minibatch_size=5, observe_key="obs", cache_packs=False)
        first = plan.packs(0)
        assert plan.packs(0) is not first
        assert plan._packs == {}
        network = build_network(
            Config(
                observation_shape=(4, 5, 5),
                lstm_hidden=16,
                lstm_stacks=1,
                proposal_mixture_components=2,
                observation_embedding_dim=8,
                address_embedding_dim=4,
                sample_embedding_dim=3,
            )
        )
        network.polymorph(traces)
        assert network.loss_packed(first).item() == network.loss_packed(plan.packs(0)).item()

    def test_token_budget_bounds_long_trace_batches(self):
        """Dynamic token batching: long traces get smaller minibatches."""
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(48, rng=RandomState(3))
        plan = PackedEpochPlan(traces, minibatch_size=8, observe_key="obs")
        lengths = {len(batch): None for batch in plan.batches}
        budget = plan.tokens_per_batch
        for batch in plan.batches:
            tokens = sum(traces[i].length for i in batch)
            # Every batch fits the budget unless it is a single long trace.
            assert tokens <= budget or len(batch) == 1
        assert len(lengths) > 1  # long-trace batches really are smaller

    def test_plan_validates_inputs(self, mixed_model, rng):
        with pytest.raises(ValueError):
            PackedEpochPlan([], minibatch_size=4)
        with pytest.raises(ValueError):
            PackedEpochPlan(mixed_model.prior_traces(3, rng=rng), minibatch_size=0)

    def test_train_rejects_unknown_offline_schedule(self, mixed_model, rng):
        engine = InferenceCompilation(
            observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=8),
            observe_key="obs",
            rng=RandomState(0),
        )
        with pytest.raises(ValueError):
            engine.train(
                dataset=mixed_model.prior_traces(8, rng=rng),
                num_traces=8,
                minibatch_size=4,
                offline_schedule="bogus",
            )
        # tokens_per_minibatch only shapes the sorted offline plan; silently
        # ignoring it elsewhere would skew schedule comparisons.
        with pytest.raises(ValueError):
            engine.train(
                dataset=mixed_model.prior_traces(8, rng=rng),
                num_traces=8,
                minibatch_size=4,
                offline_schedule="random",
                tokens_per_minibatch=64,
            )
        with pytest.raises(ValueError):
            engine.train(
                model=mixed_model, num_traces=8, minibatch_size=4, tokens_per_minibatch=64
            )
        with pytest.raises(ValueError):
            engine.train(model=mixed_model, num_traces=8, minibatch_size=4, cache_packs=False)
        # Bad knob VALUES must also fail before the irreversible freeze.
        dataset = mixed_model.prior_traces(8, rng=rng)
        for kwargs in ({"tokens_per_minibatch": 0}, {"minibatch_size": 0}):
            with pytest.raises(ValueError):
                engine.train(dataset=dataset, num_traces=8, **{"minibatch_size": 4, **kwargs})
            assert not engine.network._frozen


class TestBookkeepingFixes:
    def test_sub_minibatch_counter_initialised_and_reset(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        assert network.last_num_sub_minibatches == 0  # before any loss
        traces = mixed_model.prior_traces(6, rng=rng)
        network.polymorph(traces)
        network.loss(traces)
        assert network.last_num_sub_minibatches == len({t.trace_type for t in traces})
        model = FunctionModel(variable_program, name="variable")
        varied = model.prior_traces(12, rng=rng)
        network.loss(varied)  # reset, then recounted for the new minibatch
        assert network.last_num_sub_minibatches == len({t.trace_type for t in varied})

    def test_polymorph_skips_known_trace_types(self, small_config, mixed_model, rng):
        network = build_network(small_config)
        traces = mixed_model.prior_traces(5, rng=rng)
        assert len(network.polymorph(traces)) > 0
        assert network.num_addresses == 2
        # Second scan of the same trace type is a set lookup per trace.
        assert network.polymorph(mixed_model.prior_traces(5, rng=rng)) == []
        assert mixed_model.prior_traces(1, rng=rng)[0].trace_type in network._known_trace_types

    def test_frozen_polymorph_reports_each_discard_once(self, small_config, mixed_model, gaussian_model, rng):
        network = build_network(small_config)
        network.polymorph(mixed_model.prior_traces(3, rng=rng))
        network.freeze_architecture()
        before = network.num_parameters()
        network.polymorph(gaussian_model.prior_traces(3, rng=rng))
        assert network.num_parameters() == before
        assert len(network.last_discarded) == len(set(network.last_discarded)) > 0
        # Already-reported discards (and their trace type) are not re-scanned.
        network.polymorph(gaussian_model.prior_traces(3, rng=rng))
        assert network.last_discarded == []

    def test_polymorph_still_grows_on_new_types(self, small_config, rng):
        network = build_network(small_config)
        model = FunctionModel(variable_program, name="variable")
        traces = model.prior_traces(30, rng=rng)
        short = [t for t in traces if t["n"] == 0]
        longer = [t for t in traces if t["n"] == 2]
        assert short and longer
        assert len(network.polymorph(short)) > 0
        created = network.polymorph(longer)  # new type brings new addresses
        assert len(created) > 0
        assert "x2" in network.proposal_layers
