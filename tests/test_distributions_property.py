"""Property-based tests (hypothesis) for the distribution library.

These check the invariants that the inference engines rely on: samples lie in
the support, log densities are finite exactly on the support, densities
normalise, and serialisation round-trips preserve the density everywhere.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.common.rng import RandomState
from repro.distributions import (
    Categorical,
    Mixture,
    Normal,
    TruncatedNormal,
    Uniform,
    distribution_from_dict,
)

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=0.05, max_value=20, allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(loc=finite_floats, scale=positive_floats, seed=st.integers(0, 2**31 - 1))
def test_normal_samples_have_finite_log_prob(loc, scale, seed):
    dist = Normal(loc, scale)
    samples = dist.sample(RandomState(seed), size=16)
    assert np.all(np.isfinite(dist.log_prob(samples)))


@settings(max_examples=50, deadline=None)
@given(low=finite_floats, width=positive_floats, seed=st.integers(0, 2**31 - 1))
def test_uniform_support_invariants(low, width, seed):
    dist = Uniform(low, low + width)
    samples = dist.sample(RandomState(seed), size=32)
    assert np.all(samples >= low) and np.all(samples <= low + width)
    assert np.all(np.isfinite(dist.log_prob(samples)))
    assert dist.log_prob(low + width + 1.0) == -np.inf
    assert dist.log_prob(low - 1.0) == -np.inf


@settings(max_examples=50, deadline=None)
@given(
    loc=finite_floats,
    scale=positive_floats,
    low=st.floats(min_value=-20, max_value=0, allow_nan=False),
    width=st.floats(min_value=0.5, max_value=30, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)
def test_truncated_normal_samples_stay_in_bounds(loc, scale, low, width, seed):
    dist = TruncatedNormal(loc, scale, low, low + width)
    samples = np.atleast_1d(dist.sample(RandomState(seed), size=32))
    assert np.all(samples >= low - 1e-9)
    assert np.all(samples <= low + width + 1e-9)
    assert np.all(np.isfinite(dist.log_prob(samples)))


@settings(max_examples=50, deadline=None)
@given(
    probs=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=12),
    seed=st.integers(0, 2**31 - 1),
)
def test_categorical_probabilities_normalise_and_samples_valid(probs, seed):
    dist = Categorical(probs)
    assert np.isclose(dist.probs.sum(), 1.0)
    samples = dist.sample(RandomState(seed), size=64)
    assert np.all((samples >= 0) & (samples < len(probs)))
    total_mass = np.exp(dist.log_prob(np.arange(len(probs)))).sum()
    assert np.isclose(total_mass, 1.0)


@settings(max_examples=30, deadline=None)
@given(
    loc=st.floats(min_value=-5, max_value=5, allow_nan=False),
    scale=st.floats(min_value=0.1, max_value=5, allow_nan=False),
)
def test_normal_density_normalises(loc, scale):
    dist = Normal(loc, scale)
    grid = np.linspace(loc - 12 * scale, loc + 12 * scale, 4001)
    integral = np.trapezoid(np.exp(dist.log_prob(grid)), grid)
    assert np.isclose(integral, 1.0, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    loc=st.floats(min_value=-3, max_value=3, allow_nan=False),
    scale=st.floats(min_value=0.2, max_value=3, allow_nan=False),
    low=st.floats(min_value=-4, max_value=0, allow_nan=False),
    width=st.floats(min_value=1.0, max_value=8, allow_nan=False),
)
def test_truncated_normal_density_normalises(loc, scale, low, width):
    dist = TruncatedNormal(loc, scale, low, low + width)
    grid = np.linspace(low, low + width, 4001)
    integral = np.trapezoid(np.exp(dist.log_prob(grid)), grid)
    assert np.isclose(integral, 1.0, atol=2e-3)


@settings(max_examples=40, deadline=None)
@given(
    loc1=st.floats(min_value=-5, max_value=5, allow_nan=False),
    loc2=st.floats(min_value=-5, max_value=5, allow_nan=False),
    scale=positive_floats,
    weight=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    x=st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_mixture_roundtrip_preserves_density(loc1, loc2, scale, weight, x):
    mix = Mixture([Normal(loc1, scale), Normal(loc2, scale)], [weight, 1.0 - weight])
    rebuilt = distribution_from_dict(mix.to_dict())
    assert np.isclose(rebuilt.log_prob(x), mix.log_prob(x), rtol=1e-10, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    loc=finite_floats,
    scale=positive_floats,
    x=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
def test_normal_roundtrip_preserves_density(loc, scale, x):
    dist = Normal(loc, scale)
    rebuilt = distribution_from_dict(dist.to_dict())
    assert np.isclose(rebuilt.log_prob(x), dist.log_prob(x), rtol=1e-12, atol=1e-12)
