"""Tests for repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import RandomState, get_rng, seed_all, temporary_seed


class TestRandomState:
    def test_same_seed_same_stream(self):
        a = RandomState(7)
        b = RandomState(7)
        assert np.allclose(a.normal(size=10), b.normal(size=10))

    def test_different_seed_different_stream(self):
        a = RandomState(7)
        b = RandomState(8)
        assert not np.allclose(a.normal(size=10), b.normal(size=10))

    def test_reseed_restarts_stream(self):
        state = RandomState(3)
        first = state.uniform(size=5)
        state.reseed(3)
        assert np.allclose(state.uniform(size=5), first)

    def test_spawn_children_are_deterministic(self):
        parent = RandomState(11)
        child_a = parent.spawn(0)
        child_b = RandomState(11).spawn(0)
        assert np.allclose(child_a.normal(size=6), child_b.normal(size=6))

    def test_spawn_children_differ_by_key(self):
        parent = RandomState(11)
        assert not np.allclose(parent.spawn(0).normal(size=6), parent.spawn(1).normal(size=6))

    def test_spawn_name_includes_key(self):
        parent = RandomState(11, name="root")
        assert parent.spawn(3).name == "root/3"
        assert parent.spawn((3, 4)).name == "root/3/4"

    def test_spawn_tuple_keys_mix_instead_of_summing(self):
        # (b, i) and (b + 1, i - 1) sum to the same value; with entropy-word
        # mixing they must still be unrelated streams (the per-trace seed
        # collision fix relies on this).
        parent = RandomState(11)
        draws = {
            key: tuple(parent.spawn(key).normal(size=6))
            for key in [(5, 1), (6, 0), (4, 2), (5, 2), (6, 1)]
        }
        assert len(set(draws.values())) == len(draws)
        # Deterministic: the same composite key reproduces the same stream.
        again = RandomState(11).spawn((5, 1)).normal(size=6)
        assert np.allclose(again, draws[(5, 1)])
        # A tuple key is not the same stream as the flat sum of its parts.
        assert not np.allclose(parent.spawn((5, 1)).normal(size=6), parent.spawn(6).normal(size=6))

    def test_integers_bounds(self):
        state = RandomState(0)
        draws = state.integers(0, 5, size=200)
        assert draws.min() >= 0 and draws.max() < 5

    def test_choice_with_probabilities(self):
        state = RandomState(0)
        draws = state.choice(3, size=3000, p=[0.8, 0.1, 0.1])
        assert (draws == 0).mean() > 0.7

    def test_convenience_distributions(self):
        state = RandomState(0)
        assert state.gamma(2.0, 1.0, size=10).shape == (10,)
        assert state.beta(2.0, 2.0, size=10).shape == (10,)
        assert state.poisson(3.0, size=10).shape == (10,)
        assert state.exponential(1.0, size=10).shape == (10,)
        assert state.standard_normal(4).shape == (4,)
        assert len(state.permutation(np.arange(5))) == 5


class TestGlobalState:
    def test_seed_all_is_reproducible(self):
        seed_all(99)
        a = get_rng().normal(size=5)
        seed_all(99)
        b = get_rng().normal(size=5)
        assert np.allclose(a, b)

    def test_temporary_seed_restores_previous_stream(self):
        seed_all(5)
        _ = get_rng().normal(size=3)
        expected_next = np.random.default_rng(5).normal(size=6)[3:]
        with temporary_seed(123):
            inner = get_rng().normal(size=3)
            assert np.allclose(inner, np.random.default_rng(123).normal(size=3))
        after = get_rng().normal(size=3)
        assert np.allclose(after, expected_next)

    def test_temporary_seed_yields_global_state(self):
        with temporary_seed(42) as state:
            assert state is get_rng()


class TestSamplerEpochStreams:
    """The sampler's per-epoch shuffle stream must mix (seed, epoch), not sum.

    Additive keying (``seed + epoch``) makes (seed=4, epoch=1) and
    (seed=5, epoch=0) share one shuffle stream — the PR 3 seed-collision
    class resurfacing in the training pipeline.
    """

    def _order(self, seed, epoch):
        from repro.data.sampler import DistributedTraceSampler

        sampler = DistributedTraceSampler(
            list(range(320)), minibatch_size=8, num_ranks=1, rank=0, seed=seed
        )
        sampler.set_epoch(epoch)
        return [chunk[0] for chunk in sampler]

    def test_adjacent_seed_epoch_pairs_do_not_collide(self):
        assert self._order(4, 1) != self._order(5, 0)

    def test_epoch_stream_is_deterministic(self):
        assert self._order(4, 1) == self._order(4, 1)

    def test_matches_spawned_child_stream(self):
        # The sampler's shuffle is exactly the (seed, epoch)-spawned child.
        order = np.arange(40)
        RandomState(4).spawn(1).generator.shuffle(order)
        first_indices = [int(i) * 8 for i in order]
        assert self._order(4, 1) == first_indices
