"""Tests of compiled trace-type execution plans (repro.ppl.inference.plans).

The acceptance gate is bit-identity: a cohort that runs on the planned fast
path must produce the same sample values, the same importance weights and the
same post-run generator states as the dynamic lockstep path — planned
execution may only ever change speed.  On top of that gate: bucket reuse
(a B=3 cohort on a bucket-4 plan), divergence demotion (the loopy model),
cache invalidation on retraining, engine-stat key parity, and nonzero
plan-cache hits through the serving layer on both worker backends.
"""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.inference.batched import (
    ENGINE_STAT_KEYS,
    TraceJob,
    batched_importance_sampling,
    execute_trace_jobs,
    merge_engine_stats,
    new_engine_stats,
    per_trace_rngs,
    resolve_observation_array,
)
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.inference.plans import (
    DEFAULT_BUCKET_SIZES,
    PlanCache,
    PlannedProposal,
    bucket_size_for,
    compile_plan,
)
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import PosteriorService
from tests.test_batched_inference import (
    OBSERVATION,
    lockstep_engine,  # noqa: F401 - module fixture
    lockstep_program,
    loopy_engine,  # noqa: F401 - module fixture
)


def controlled_values(trace):
    return [(s.address, s.value) for s in trace.samples if s.controlled]


def make_jobs(network, observation, rngs, observe_key="obs"):
    array = resolve_observation_array(network, observation, observe_key)
    return [TraceJob(i, observation, array, rng) for i, rng in enumerate(rngs)]


def warm_cache(model, network, observation, cache, batch_size, seed=99, runs=2):
    """Run enough seeded cohorts through ``cache`` to compile + serve a plan."""
    for offset in range(runs):
        batched_importance_sampling(
            model, observation, num_traces=batch_size, batch_size=batch_size,
            network=network, rng=RandomState(seed + offset), plan_cache=cache,
        )
    return cache


# ------------------------------------------------------------------ unit layer
class TestPlanPrimitives:
    def test_bucket_size_rounds_up(self):
        assert bucket_size_for(1) == 1
        assert bucket_size_for(3) == 4
        assert bucket_size_for(16) == 16
        assert bucket_size_for(33) == 64
        top = DEFAULT_BUCKET_SIZES[-1]
        assert bucket_size_for(top + 1) == 2 * top

    def test_planned_proposal_replays_stored_draw(self):
        stub = PlannedProposal(1.25, -0.5)
        assert stub.sample(RandomState(0)) == 1.25
        assert stub.log_prob(1.25) == -0.5

    def test_compile_plan_matches_trace_schedule(self, lockstep_engine):
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=8)
        leased = cache.lease(engine.network, 8)
        assert leased is not None
        plan, scratch = leased
        try:
            assert [step.address for step in plan.steps] == ["addr_a", "addr_b", "addr_c"]
            assert plan.bucket_size == 8
            assert plan.network_version == engine.network.version
        finally:
            cache.release(plan, scratch)


# ------------------------------------------------------------ engine identity
class TestPlannedDynamicBitIdentity:
    def test_samples_and_weights_bit_identical(self, lockstep_engine):
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=16)
        planned = batched_importance_sampling(
            model, OBSERVATION, num_traces=48, batch_size=16,
            network=engine.network, rng=RandomState(21), plan_cache=cache,
        )
        dynamic = batched_importance_sampling(
            model, OBSERVATION, num_traces=48, batch_size=16,
            network=engine.network, rng=RandomState(21),
        )
        assert planned.engine_stats["plan_hits"] > 0
        assert planned.engine_stats["num_planned_cohorts"] > 0
        assert planned.engine_stats["num_plan_divergences"] == 0
        for planned_trace, dynamic_trace in zip(planned.values, dynamic.values):
            assert controlled_values(planned_trace) == controlled_values(dynamic_trace)
        assert np.array_equal(
            np.asarray(planned.log_weights), np.asarray(dynamic.log_weights)
        )

    def test_generator_states_bit_identical(self, lockstep_engine):
        """Planned cohorts consume each trace's random stream exactly as the
        dynamic path does — the post-run bit-generator states must match."""
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=8)

        planned_rngs = per_trace_rngs(RandomState(5), 8)
        dynamic_rngs = per_trace_rngs(RandomState(5), 8)
        planned_traces, planned_stats = execute_trace_jobs(
            model, make_jobs(engine.network, OBSERVATION, planned_rngs),
            engine.network, plan_cache=cache,
        )
        dynamic_traces, _ = execute_trace_jobs(
            model, make_jobs(engine.network, OBSERVATION, dynamic_rngs), engine.network
        )
        assert planned_stats["plan_hits"] == 1
        for planned_trace, dynamic_trace in zip(planned_traces, dynamic_traces):
            assert controlled_values(planned_trace) == controlled_values(dynamic_trace)
        for planned_rng, dynamic_rng in zip(planned_rngs, dynamic_rngs):
            assert (
                planned_rng.generator.bit_generator.state
                == dynamic_rng.generator.bit_generator.state
            )

    def test_smaller_cohort_reuses_bigger_bucket(self, lockstep_engine):
        """A B=3 cohort leases the bucket-4 plan (prefix views + scratch
        slices) instead of compiling a second plan, and stays bit-identical."""
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=4)
        before = cache.stats()["compiles"]
        planned = batched_importance_sampling(
            model, OBSERVATION, num_traces=3, batch_size=3,
            network=engine.network, rng=RandomState(31), plan_cache=cache,
        )
        dynamic = batched_importance_sampling(
            model, OBSERVATION, num_traces=3, batch_size=3,
            network=engine.network, rng=RandomState(31),
        )
        assert planned.engine_stats["plan_hits"] == 1
        assert cache.stats()["compiles"] == before  # reused, not recompiled
        for planned_trace, dynamic_trace in zip(planned.values, dynamic.values):
            assert controlled_values(planned_trace) == controlled_values(dynamic_trace)
        assert np.array_equal(
            np.asarray(planned.log_weights), np.asarray(dynamic.log_weights)
        )


# ------------------------------------------------------- divergence/demotion
class TestDivergenceFallback:
    def test_loopy_model_diverges_matches_dynamic_and_demotes(self, loopy_engine):
        """Variable-length control flow mispredicts the leased plan: the
        session falls back to the dynamic path mid-cohort (bit-identically)
        and repeated mid-plan divergence demotes the trace type."""
        model, engine = loopy_engine
        cache = PlanCache()
        observation = {"obs": 1.2}
        results = []
        for offset in range(6):
            results.append(
                batched_importance_sampling(
                    model, observation, num_traces=16, batch_size=16,
                    network=engine.network, rng=RandomState(41 + offset),
                    plan_cache=cache,
                )
            )
        merged = new_engine_stats()
        for result in results:
            merge_engine_stats(merged, result.engine_stats)
        stats = cache.stats()
        assert merged["num_plan_divergences"] > 0
        assert stats["demotions"] >= 1
        for offset, planned in enumerate(results):
            dynamic = batched_importance_sampling(
                model, observation, num_traces=16, batch_size=16,
                network=engine.network, rng=RandomState(41 + offset),
            )
            for planned_trace, dynamic_trace in zip(planned.values, dynamic.values):
                assert controlled_values(planned_trace) == controlled_values(dynamic_trace)
            assert np.array_equal(
                np.asarray(planned.log_weights), np.asarray(dynamic.log_weights)
            )


# ----------------------------------------------------------------- invalidation
class TestInvalidation:
    def test_retraining_drops_compiled_plans(self, lockstep_engine):
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=8)
        assert cache.stats()["plans"] == 1
        engine.network.notify_updated()
        try:
            assert cache.lease(engine.network, 8) is None  # cold again
            stats = cache.stats()
            assert stats["invalidations"] == 1
            assert stats["plans"] == 0
            assert stats["trace_types"] == 0
            # The cache recovers: new observations recompile under the new version.
            warm_cache(model, engine.network, OBSERVATION, cache, batch_size=8, seed=77)
            assert cache.stats()["plans"] == 1
        finally:
            # notify_updated above rolled the version; leave a consistent
            # module fixture behind for whatever test runs next.
            engine.network.notify_updated()

    def test_stale_lease_release_is_dropped(self, lockstep_engine):
        model, engine = lockstep_engine
        cache = PlanCache()
        warm_cache(model, engine.network, OBSERVATION, cache, batch_size=4)
        leased = cache.lease(engine.network, 4)
        assert leased is not None
        plan, scratch = leased
        cache.invalidate()
        cache.release(plan, scratch)  # must not resurrect the stale plan
        assert cache.stats()["plans"] == 0


# -------------------------------------------------------------- stat key parity
class TestEngineStatKeys:
    def test_new_engine_stats_matches_key_set(self):
        assert set(new_engine_stats()) == set(ENGINE_STAT_KEYS)
        assert len(ENGINE_STAT_KEYS) == len(set(ENGINE_STAT_KEYS))

    def test_merge_accepts_unknown_keys(self):
        """A worker process running newer engine code may ship counters this
        generation does not know; merging must keep them, not KeyError."""
        into = new_engine_stats()
        merge_engine_stats(into, {"num_cohorts": 2, "future_counter": 5})
        assert into["num_cohorts"] == 2
        assert into["future_counter"] == 5

    def test_plan_counters_are_registered(self):
        for key in (
            "plan_hits", "plan_misses", "plan_demotions",
            "num_planned_cohorts", "num_planned_rounds",
            "num_plan_divergences", "num_plan_geometry_misses",
        ):
            assert key in ENGINE_STAT_KEYS


# ------------------------------------------------------------------- serving
class TestServingPlans:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_served_posteriors_bit_identical_with_plan_hits(
        self, lockstep_engine, backend
    ):
        model, engine = lockstep_engine
        results = {}
        for use_plans in (True, False):
            service = PosteriorService(
                model, engine.network, observe_key="obs", backend=backend,
                num_workers=2, max_batch=16, shard_min=8, use_plans=use_plans,
            )
            with service:
                posteriors = [
                    service.posterior(
                        OBSERVATION, 32, seed=61 + run, use_cache=False, timeout=120
                    ).posterior
                    for run in range(3)
                ]
                results[use_plans] = (posteriors, service.stats())
        planned_posteriors, planned_stats = results[True]
        dynamic_posteriors, dynamic_stats = results[False]
        for planned, dynamic in zip(planned_posteriors, dynamic_posteriors):
            for planned_trace, dynamic_trace in zip(planned.values, dynamic.values):
                assert controlled_values(planned_trace) == controlled_values(dynamic_trace)
            assert np.array_equal(
                np.asarray(planned.log_weights), np.asarray(dynamic.log_weights)
            )
        assert planned_stats["engine"]["plan_hits"] > 0
        assert dynamic_stats["engine"]["plan_hits"] == 0
        if backend == "thread":
            assert planned_stats["plans"]["hits"] > 0
        else:
            assert "plans" not in planned_stats  # per-process caches, no local one

    def test_retraining_invalidates_serving_plan_cache(self, lockstep_engine):
        model, engine = lockstep_engine
        service = PosteriorService(
            model, engine.network, observe_key="obs", backend="thread",
            num_workers=2, max_batch=16, shard_min=8,
        )
        with service:
            service.posterior(OBSERVATION, 16, seed=71, use_cache=False, timeout=120)
            assert service.stats()["plans"]["plans"] >= 0
            engine.network.notify_updated()
            stats = service.stats()["plans"]
            assert stats["invalidations"] >= 1
            assert stats["plans"] == 0
            # Serving keeps working (and re-plans) on the new generation.
            result = service.posterior(
                OBSERVATION, 16, seed=72, use_cache=False, timeout=120
            )
            assert len(result.posterior.values) == 16
