"""Value/shape tests for tensor operations and factories."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import unbroadcast


class TestTensorBasics:
    def test_construction_defaults_to_float64(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float64
        assert t.shape == (3,)
        assert t.size == 3
        assert t.ndim == 1
        assert len(t) == 3

    def test_integer_data_is_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_numpy_returns_underlying_array(self):
        arr = np.arange(4.0)
        assert Tensor(arr).numpy() is not None
        assert np.allclose(Tensor(arr).numpy(), arr)

    def test_factories(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones((4,)).data.sum() == 4
        assert Tensor.randn(5, 2).shape == (5, 2)
        assert Tensor.from_numpy(np.eye(2)).shape == (2, 2)

    def test_comparisons_return_boolean_tensors(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert np.array_equal((t > 1.5).data, [False, True, True])
        assert np.array_equal((t <= 2.0).data, [True, True, False])
        assert np.array_equal((t < 2.0).data, [True, False, False])
        assert np.array_equal((t >= 3.0).data, [False, False, True])

    def test_arithmetic_with_scalars_and_arrays(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((1.0 + t).data, [2.0, 3.0])
        assert np.allclose((3.0 - t).data, [2.0, 1.0])
        assert np.allclose((2.0 * t).data, [2.0, 4.0])
        assert np.allclose((2.0 / t).data, [2.0, 1.0])
        assert np.allclose((t + np.array([1.0, 1.0])).data, [2.0, 3.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_flatten_and_view(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert t.flatten(1).shape == (3, 4)
        assert t.reshape(2, 6).shape == (2, 6)
        assert t.view(12).shape == (12,)
        assert t.T.shape == (4, 3)


class TestUnbroadcast:
    def test_noop_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_sums_over_added_leading_dims(self):
        grad = np.ones((5, 2, 3))
        assert np.allclose(unbroadcast(grad, (2, 3)), np.full((2, 3), 5.0))

    def test_sums_over_size_one_dims(self):
        grad = np.ones((2, 3))
        assert np.allclose(unbroadcast(grad, (2, 1)), np.full((2, 1), 3.0))


class TestFunctionalValues:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 6)))
        s = F.softmax(x, axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_is_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        s = F.softmax(x, axis=-1)
        assert np.all(np.isfinite(s.data))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp as scipy_lse

        x = np.random.default_rng(1).standard_normal((3, 7))
        assert np.allclose(F.logsumexp(Tensor(x), axis=-1).data, scipy_lse(x, axis=-1))

    def test_logsumexp_keepdims(self):
        x = Tensor(np.zeros((2, 3)))
        assert F.logsumexp(x, axis=-1, keepdims=True).shape == (2, 1)

    def test_softplus_matches_reference(self):
        x = np.array([-50.0, 0.0, 50.0])
        out = F.softplus(Tensor(x)).data
        assert np.allclose(out, np.logaddexp(0, x))

    def test_erf_and_normal_cdf_match_scipy(self):
        from scipy.special import erf as scipy_erf, ndtr

        x = np.linspace(-3, 3, 11)
        assert np.allclose(F.erf(Tensor(x)).data, scipy_erf(x))
        assert np.allclose(F.normal_cdf(Tensor(x)).data, ndtr(x), atol=1e-12)

    def test_one_hot(self):
        encoded = F.one_hot([0, 2, 1], 3)
        assert np.allclose(encoded.data, np.eye(3)[[0, 2, 1]])

    def test_gather_picks_indices(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        out = F.gather(x, [0, 1, 3], axis=-1)
        assert np.allclose(out.data, [0.0, 5.0, 11.0])

    def test_nll_loss_reductions(self):
        log_probs = F.log_softmax(Tensor(np.zeros((2, 3))), axis=-1)
        targets = [0, 1]
        assert F.nll_loss(log_probs, targets, reduction="mean").item() == pytest.approx(np.log(3.0))
        assert F.nll_loss(log_probs, targets, reduction="sum").item() == pytest.approx(2 * np.log(3.0))
        assert F.nll_loss(log_probs, targets, reduction="none").shape == (2,)
        with pytest.raises(ValueError):
            F.nll_loss(log_probs, targets, reduction="bogus")

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = np.array([0.0, 0.0])
        assert F.mse_loss(pred, Tensor(target)).item() == pytest.approx(2.5)
        with pytest.raises(ValueError):
            F.mse_loss(pred, Tensor(target), reduction="bogus")

    def test_dropout_train_and_eval(self):
        x = Tensor(np.ones((100, 10)))
        dropped = F.dropout(x, p=0.5, training=True)
        assert not np.allclose(dropped.data, x.data)
        assert F.dropout(x, p=0.5, training=False) is x
        assert F.dropout(x, p=0.0, training=True) is x
        with pytest.raises(ValueError):
            F.dropout(x, p=1.0)

    def test_linear_matches_manual(self):
        x = np.random.default_rng(0).standard_normal((4, 3))
        w = np.random.default_rng(1).standard_normal((2, 3))
        b = np.random.default_rng(2).standard_normal((2,))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b)


class TestConv3dValues:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).standard_normal((1, 1, 4, 4, 4))
        w = np.zeros((1, 1, 1, 1, 1))
        w[0, 0, 0, 0, 0] = 1.0
        out = F.conv3d(Tensor(x), Tensor(w))
        assert np.allclose(out.data, x)

    def test_averaging_kernel(self):
        x = np.ones((1, 1, 3, 3, 3))
        w = np.full((1, 1, 3, 3, 3), 1.0 / 27.0)
        out = F.conv3d(Tensor(x), Tensor(w))
        assert out.shape == (1, 1, 1, 1, 1)
        assert out.item() == pytest.approx(1.0)

    def test_output_shape_with_padding_stride(self):
        x = Tensor(np.zeros((2, 3, 8, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3, 3)))
        out = F.conv3d(x, w, stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4, 4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv3d(Tensor(np.zeros((1, 2, 4, 4, 4))), Tensor(np.zeros((1, 3, 3, 3, 3))))

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            F.conv3d(Tensor(np.zeros((1, 1, 2, 2, 2))), Tensor(np.zeros((1, 1, 3, 3, 3))))

    def test_max_pool_values(self):
        x = np.arange(8.0).reshape(1, 1, 2, 2, 2)
        out = F.max_pool3d(Tensor(x), 2)
        assert out.item() == pytest.approx(7.0)

    def test_max_pool_too_small_raises(self):
        with pytest.raises(ValueError):
            F.max_pool3d(Tensor(np.zeros((1, 1, 1, 1, 1))), 2)

    def test_conv3d_matches_scipy_correlate(self):
        from scipy.ndimage import correlate

        rng = np.random.default_rng(3)
        x = rng.standard_normal((5, 5, 5))
        w = rng.standard_normal((3, 3, 3))
        ours = F.conv3d(Tensor(x[None, None]), Tensor(w[None, None])).data[0, 0]
        reference = correlate(x, w, mode="constant")[1:-1, 1:-1, 1:-1]
        assert np.allclose(ours, reference, atol=1e-10)
