"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState, seed_all
from repro.distributions import Categorical, Normal, Uniform
from repro import ppl


@pytest.fixture(autouse=True)
def _seed_everything():
    """Every test starts from the same global seed for reproducibility."""
    seed_all(1234)
    yield


@pytest.fixture
def rng() -> RandomState:
    return RandomState(2024, name="test")


@pytest.fixture
def small_config() -> Config:
    """A tiny network configuration that keeps NN tests fast."""
    return Config(
        observation_shape=(4, 5, 5),
        lstm_hidden=16,
        lstm_stacks=1,
        proposal_mixture_components=2,
        observation_embedding_dim=8,
        address_embedding_dim=4,
        sample_embedding_dim=3,
    )


def gaussian_program():
    """mu ~ N(0,1); y ~ N(mu, 0.5): conjugate, with known posterior."""
    mu = ppl.sample(Normal(0.0, 1.0), name="mu")
    ppl.observe(Normal(mu, 0.5), name="obs")
    return mu


def gaussian_posterior(y: float):
    """Analytic posterior mean/std for the conjugate Gaussian program."""
    prior_var, lik_var = 1.0, 0.25
    post_var = prior_var * lik_var / (prior_var + lik_var)
    post_mean = y * prior_var / (prior_var + lik_var)
    return post_mean, np.sqrt(post_var)


def mixed_program():
    """A small model with continuous + categorical latents and a vector observation."""
    mu = ppl.sample(Uniform(-2.0, 2.0), name="mu")
    k = ppl.sample(Categorical([0.5, 0.3, 0.2]), name="k")
    loc = np.array([mu, mu + k, mu - k, 2.0 * mu])
    ppl.observe(Normal(loc, 0.3), name="obs")
    return {"mu": mu, "k": k}


@pytest.fixture
def gaussian_model():
    return ppl.FunctionModel(gaussian_program, name="gaussian")


@pytest.fixture
def mixed_model():
    return ppl.FunctionModel(mixed_program, name="mixed")


@pytest.fixture
def tau_model():
    from repro.simulators import TauDecayModel

    return TauDecayModel()


@pytest.fixture
def tiny_tau_dataset(tau_model, rng):
    """A small in-memory dataset of tau-decay traces."""
    from repro.data import generate_dataset

    return generate_dataset(tau_model, 60, rng=rng)
