"""End-to-end PPX tests: a simulator controlled by the PPL over the protocol."""

import threading

import numpy as np
import pytest

from repro.distributions import Normal, Uniform
from repro.ppl import RemoteModel
from repro.ppl.state import PriorController
from repro.ppx import SimulatorClient, SimulatorController, make_queue_pair


def gaussian_simulator(client, observation):
    """mu ~ N(0,1); y ~ N(mu, 0.5) with a reported simulated value."""
    mu = float(np.asarray(client.sample(Normal(0.0, 1.0), name="mu")))
    client.observe(Normal(mu, 0.5), value=mu + 0.1, name="obs")
    return mu


def uncontrolled_simulator(client, observation):
    """mu is controlled; a nuisance jitter draw is flagged control=False."""
    mu = float(np.asarray(client.sample(Normal(0.0, 1.0), name="mu")))
    jitter = float(np.asarray(client.sample(Normal(0.0, 0.3), name="jitter", control=False)))
    client.observe(Normal(mu + jitter, 0.5), value=mu + jitter, name="obs")
    return mu


def repeated_address_simulator(client, observation):
    """An uncontrolled and a controlled draw at the *same* address."""
    values = []
    for controlled in (False, True):
        values.append(float(np.asarray(client.sample(Normal(0.0, 1.0), name="v", control=controlled))))
    client.observe(Normal(values[1], 0.5), value=0.2, name="obs")
    return values


def looping_simulator(client, observation):
    """A simulator with a rejection loop (variable trace length)."""
    total = 0.0
    for _ in range(10):
        draw = float(np.asarray(client.sample(Uniform(0.0, 1.0), name="u")))
        total += draw
        if total > 1.0:
            break
    client.observe(Normal(total, 0.1), value=total, name="obs")
    return total


def run_client_in_thread(simulator, transport):
    client = SimulatorClient(transport, simulator, system_name="test-sim", model_name="test")
    thread = threading.Thread(target=client.serve_forever, daemon=True)
    thread.start()
    return client, thread


class TestSimulatorController:
    def test_handshake_and_prior_trace(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(gaussian_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def prior_policy(address, distribution, request):
            return distribution.sample()

        trace = controller.run_trace(prior_policy)
        assert trace.length == 1
        assert len(trace.observes) == 1
        assert trace.samples[0].name == "mu"
        assert np.isfinite(trace.log_joint)
        assert controller.simulator_name == "test-sim"
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_observe_override_changes_likelihood(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(gaussian_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def fixed_policy(address, distribution, request):
            return 0.0  # force mu = 0

        trace_default = controller.run_trace(fixed_policy)
        trace_conditioned = controller.run_trace(fixed_policy, observe_override=5.0)
        # Conditioning on y=5 with mu=0 must be much less likely than y=0.1.
        assert trace_conditioned.log_likelihood < trace_default.log_likelihood
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_variable_length_traces(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(looping_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def prior_policy(address, distribution, request):
            return distribution.sample()

        lengths = {controller.run_trace(prior_policy).length for _ in range(20)}
        assert len(lengths) > 1  # rejection loop produces varying trace lengths
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_simulator_error_is_propagated(self):
        def failing_simulator(client, observation):
            raise RuntimeError("simulated crash")

        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(failing_simulator, sim_side)
        controller = SimulatorController(ppl_side)
        with pytest.raises(RuntimeError, match="simulated crash"):
            controller.run_trace(lambda a, d, r: d.sample())
        controller.shutdown()
        thread.join(timeout=5.0)


class TestRemoteModel:
    def _remote(self, simulator):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(simulator, sim_side)
        return RemoteModel(ppl_side, name="remote-test"), thread

    def test_prior_traces(self):
        remote, thread = self._remote(gaussian_simulator)
        traces = remote.prior_traces(5)
        assert len(traces) == 5
        assert all(t.length == 1 for t in traces)
        assert all("obs" in t.observation for t in traces)
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_importance_sampling_posterior_matches_local(self):
        from tests.conftest import gaussian_posterior

        remote, thread = self._remote(gaussian_simulator)
        y = 1.0
        posterior = remote.posterior({"obs": y}, num_traces=2000, engine="importance_sampling")
        mu = posterior.extract("mu")
        true_mean, true_std = gaussian_posterior(y)
        assert mu.mean == pytest.approx(true_mean, abs=0.1)
        assert mu.stddev == pytest.approx(true_std, abs=0.1)
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_uncontrolled_remote_draws_bypass_the_controller(self):
        from repro.common.rng import RandomState
        from repro.ppl.inference import run_importance_sampling

        remote, thread = self._remote(uncontrolled_simulator)
        provider_calls = []

        def prior_as_proposal(address, instance, prior, state):
            provider_calls.append(address)
            return prior

        posterior = run_importance_sampling(
            remote, {"obs": 0.6}, num_traces=20,
            proposal_provider=prior_as_proposal, rng=RandomState(3),
        )
        # Only the controlled draw consults the proposal provider; the
        # control=False jitter draw is sampled from its prior directly.
        assert len(provider_calls) == 20
        # And its prior density still cancels out of the importance weight.
        for trace, log_weight in zip(posterior.values, posterior.log_weights):
            assert log_weight == pytest.approx(trace.log_likelihood, abs=1e-10)
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_uncontrolled_draws_advance_instance_numbers(self):
        # The controller must see the same (address, instance) keys the trace
        # records, or ReplayController-based kernels silently redraw sites.
        from repro.common.rng import RandomState
        from repro.ppl.inference import run_importance_sampling

        remote, thread = self._remote(repeated_address_simulator)
        instances = []

        def provider(address, instance, prior, state):
            instances.append(instance)
            return None

        posterior = run_importance_sampling(
            remote, {"obs": 0.2}, num_traces=3, proposal_provider=provider, rng=RandomState(5)
        )
        # The controlled draw is the second occurrence at its address.
        assert instances == [1, 1, 1]
        assert [s.instance for s in posterior.values[0].samples] == [0, 1]
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_guided_batched_inference_over_remote_model(self):
        # The batched engine must serve RemoteModel guided executions through
        # its per-trace path (one shared PPX transport cannot be suspended
        # concurrently) — including the previous-sample value, which remote
        # executions have no local ExecutionState to read from.
        from repro.common.rng import RandomState
        from repro.ppl.inference.inference_compilation import InferenceCompilation
        from repro.ppl.nn.embeddings import ObservationEmbeddingFC

        remote, thread = self._remote(gaussian_simulator)
        dataset = remote.prior_traces(40, rng=RandomState(0))
        engine = InferenceCompilation(
            observation_embedding=ObservationEmbeddingFC(input_dim=1, embedding_dim=8),
            observe_key="obs",
            rng=RandomState(1),
        )
        engine.train(dataset=dataset, num_traces=80, minibatch_size=10)
        posterior = engine.posterior(remote, {"obs": 1.0}, num_traces=12, rng=RandomState(2))
        assert len(posterior) == 12
        assert np.all(np.isfinite(posterior.log_weights))
        # Remote executions run per trace, never through the lockstep cohort.
        assert posterior.engine_stats["num_batched_steps"] == 0
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_distributed_parallel_ranks_are_serialized_for_remote_models(self):
        # Concurrent ranks would interleave the single PPX transport's
        # request/reply protocol; the driver must serialize them.
        from repro.common.rng import RandomState
        from repro.distributed.inference import distributed_importance_sampling

        remote, thread = self._remote(gaussian_simulator)
        posterior = distributed_importance_sampling(
            remote, {"obs": 0.5}, num_traces=12, num_ranks=3, batch_size=4,
            network=None, rng=RandomState(6), parallel=True,
        )
        assert len(posterior) == 12
        assert np.all(np.isfinite(posterior.log_weights))
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_remote_model_forward_raises(self):
        remote, thread = self._remote(gaussian_simulator)
        with pytest.raises(RuntimeError):
            remote.forward()
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_multiple_observes_not_supported(self):
        remote, thread = self._remote(gaussian_simulator)
        with pytest.raises(NotImplementedError):
            remote.get_trace(PriorController(), observed_values={"a": 1.0, "b": 2.0})
        remote.shutdown()
        thread.join(timeout=5.0)


class TestExternalProcess:
    """The Sherpa-like deployment: the simulator runs in a separate OS process."""

    def test_subprocess_simulator_over_tcp(self):
        pytest.importorskip("subprocess")
        from repro.simulators.external import start_remote_model

        remote, process = start_remote_model("gaussian")
        try:
            traces = remote.prior_traces(3)
            assert len(traces) == 3
            posterior = remote.posterior({"obs": 0.8}, num_traces=200, engine="importance_sampling")
            assert posterior.extract("mu").mean == pytest.approx(0.64, abs=0.25)
        finally:
            remote.shutdown()
            process.wait(timeout=10)
        assert process.returncode == 0
