"""End-to-end PPX tests: a simulator controlled by the PPL over the protocol."""

import threading

import numpy as np
import pytest

from repro.distributions import Normal, Uniform
from repro.ppl import RemoteModel
from repro.ppl.state import PriorController
from repro.ppx import SimulatorClient, SimulatorController, make_queue_pair


def gaussian_simulator(client, observation):
    """mu ~ N(0,1); y ~ N(mu, 0.5) with a reported simulated value."""
    mu = float(np.asarray(client.sample(Normal(0.0, 1.0), name="mu")))
    client.observe(Normal(mu, 0.5), value=mu + 0.1, name="obs")
    return mu


def looping_simulator(client, observation):
    """A simulator with a rejection loop (variable trace length)."""
    total = 0.0
    for _ in range(10):
        draw = float(np.asarray(client.sample(Uniform(0.0, 1.0), name="u")))
        total += draw
        if total > 1.0:
            break
    client.observe(Normal(total, 0.1), value=total, name="obs")
    return total


def run_client_in_thread(simulator, transport):
    client = SimulatorClient(transport, simulator, system_name="test-sim", model_name="test")
    thread = threading.Thread(target=client.serve_forever, daemon=True)
    thread.start()
    return client, thread


class TestSimulatorController:
    def test_handshake_and_prior_trace(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(gaussian_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def prior_policy(address, distribution, request):
            return distribution.sample()

        trace = controller.run_trace(prior_policy)
        assert trace.length == 1
        assert len(trace.observes) == 1
        assert trace.samples[0].name == "mu"
        assert np.isfinite(trace.log_joint)
        assert controller.simulator_name == "test-sim"
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_observe_override_changes_likelihood(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(gaussian_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def fixed_policy(address, distribution, request):
            return 0.0  # force mu = 0

        trace_default = controller.run_trace(fixed_policy)
        trace_conditioned = controller.run_trace(fixed_policy, observe_override=5.0)
        # Conditioning on y=5 with mu=0 must be much less likely than y=0.1.
        assert trace_conditioned.log_likelihood < trace_default.log_likelihood
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_variable_length_traces(self):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(looping_simulator, sim_side)
        controller = SimulatorController(ppl_side)

        def prior_policy(address, distribution, request):
            return distribution.sample()

        lengths = {controller.run_trace(prior_policy).length for _ in range(20)}
        assert len(lengths) > 1  # rejection loop produces varying trace lengths
        controller.shutdown()
        thread.join(timeout=5.0)

    def test_simulator_error_is_propagated(self):
        def failing_simulator(client, observation):
            raise RuntimeError("simulated crash")

        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(failing_simulator, sim_side)
        controller = SimulatorController(ppl_side)
        with pytest.raises(RuntimeError, match="simulated crash"):
            controller.run_trace(lambda a, d, r: d.sample())
        controller.shutdown()
        thread.join(timeout=5.0)


class TestRemoteModel:
    def _remote(self, simulator):
        ppl_side, sim_side = make_queue_pair()
        _, thread = run_client_in_thread(simulator, sim_side)
        return RemoteModel(ppl_side, name="remote-test"), thread

    def test_prior_traces(self):
        remote, thread = self._remote(gaussian_simulator)
        traces = remote.prior_traces(5)
        assert len(traces) == 5
        assert all(t.length == 1 for t in traces)
        assert all("obs" in t.observation for t in traces)
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_importance_sampling_posterior_matches_local(self):
        from tests.conftest import gaussian_posterior

        remote, thread = self._remote(gaussian_simulator)
        y = 1.0
        posterior = remote.posterior({"obs": y}, num_traces=2000, engine="importance_sampling")
        mu = posterior.extract("mu")
        true_mean, true_std = gaussian_posterior(y)
        assert mu.mean == pytest.approx(true_mean, abs=0.1)
        assert mu.stddev == pytest.approx(true_std, abs=0.1)
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_remote_model_forward_raises(self):
        remote, thread = self._remote(gaussian_simulator)
        with pytest.raises(RuntimeError):
            remote.forward()
        remote.shutdown()
        thread.join(timeout=5.0)

    def test_multiple_observes_not_supported(self):
        remote, thread = self._remote(gaussian_simulator)
        with pytest.raises(NotImplementedError):
            remote.get_trace(PriorController(), observed_values={"a": 1.0, "b": 2.0})
        remote.shutdown()
        thread.join(timeout=5.0)


class TestExternalProcess:
    """The Sherpa-like deployment: the simulator runs in a separate OS process."""

    def test_subprocess_simulator_over_tcp(self):
        pytest.importorskip("subprocess")
        from repro.simulators.external import start_remote_model

        remote, process = start_remote_model("gaussian")
        try:
            traces = remote.prior_traces(3)
            assert len(traces) == 3
            posterior = remote.posterior({"obs": 0.8}, num_traces=200, engine="importance_sampling")
            assert posterior.extract("mu").mean == pytest.approx(0.64, abs=0.25)
        finally:
            remote.shutdown()
            process.wait(timeout=10)
        assert process.returncode == 0
