"""Tests for the whole-program model under repro.analysis.

Covers the semantic bedrock the interprocedural checkers stand on:
ImportResolver corner cases (relative imports, ``import a.b as c`` chains,
re-exports through ``__init__.py``, lexical shadowing), Project resolution
(canonicalize, method dispatch through the class hierarchy), and the two
engine-level contracts — every file is parsed exactly once, and a whole-repo
run fits the CI time budget.
"""

import ast
import textwrap
import time
from pathlib import Path

from repro.analysis.core import (
    FileContext,
    ImportResolver,
    module_name_for,
    parse_contexts,
    run_analysis,
)
from repro.analysis.checkers import all_checkers
from repro.analysis.project import Project

REPO_ROOT = Path(__file__).resolve().parents[1]


def resolver_for(source, module=None, is_package=False):
    tree = ast.parse(textwrap.dedent(source))
    return ImportResolver(tree, module=module, is_package=is_package)


def dotted(resolver, expr):
    return resolver.dotted_name(ast.parse(expr, mode="eval").body)


def build_project(tmp_path, files):
    for rel_path, source in files.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    contexts, errors = parse_contexts([str(tmp_path)])
    assert not errors, [e.message for e in errors]
    return Project(contexts)


# ----------------------------------------------------------- import resolver
class TestImportResolver:
    def test_import_as_chain(self):
        resolver = resolver_for("import numpy.random as npr\n")
        assert dotted(resolver, "npr.default_rng") == "numpy.random.default_rng"

    def test_plain_dotted_import_binds_the_root(self):
        resolver = resolver_for("import concurrent.futures\n")
        assert (
            dotted(resolver, "concurrent.futures.Future")
            == "concurrent.futures.Future"
        )

    def test_from_import_with_alias(self):
        resolver = resolver_for("from repro.common.rng import RandomState as RS\n")
        assert dotted(resolver, "RS") == "repro.common.rng.RandomState"

    def test_relative_import_anchors_at_the_package(self):
        resolver = resolver_for(
            "from ..common.rng import RandomState\n",
            module="repro.serving.workers",
        )
        assert dotted(resolver, "RandomState") == "repro.common.rng.RandomState"

    def test_relative_import_inside_a_package_init(self):
        resolver = resolver_for(
            "from .workers import CohortWorkerPool\n",
            module="repro.serving",
            is_package=True,
        )
        assert (
            dotted(resolver, "CohortWorkerPool")
            == "repro.serving.workers.CohortWorkerPool"
        )

    def test_single_dot_import_from_sibling_module(self):
        resolver = resolver_for(
            "from .rng import get_rng\n",
            module="repro.common.other",
        )
        assert dotted(resolver, "get_rng") == "repro.common.rng.get_rng"

    def test_relative_import_beyond_the_root_is_dropped(self):
        resolver = resolver_for(
            "from ....nowhere import thing\n",
            module="repro.serving",
        )
        assert dotted(resolver, "thing") == "thing"

    def test_later_def_shadows_the_import(self):
        resolver = resolver_for(
            """
            import random

            def random():
                return 4
            """
        )
        assert dotted(resolver, "random.randint") == "random.randint"
        assert "random" not in resolver.aliases

    def test_later_assignment_shadows_the_import(self):
        resolver = resolver_for(
            """
            from repro.common.rng import get_rng
            get_rng = object()
            """
        )
        assert dotted(resolver, "get_rng") == "get_rng"

    def test_shadowing_is_lexical_not_just_presence(self):
        # The def comes *before* the import: the import wins.
        resolver = resolver_for(
            """
            def helper():
                return 1

            from repro.serving.jobs import helper
            """
        )
        assert dotted(resolver, "helper") == "repro.serving.jobs.helper"

    def test_function_local_imports_are_visible(self):
        # Lazily-imported names (the repo's circular-import pattern) still
        # resolve; function scoping is approximated as file scope.
        resolver = resolver_for(
            """
            def run():
                from repro.serving.procpool import ProcessCohortPool
                return ProcessCohortPool
            """
        )
        assert (
            dotted(resolver, "ProcessCohortPool")
            == "repro.serving.procpool.ProcessCohortPool"
        )


# ------------------------------------------------------------- module naming
class TestModuleNaming:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/serving/service.py") == "repro.serving.service"

    def test_init_maps_to_its_package(self):
        assert module_name_for("src/repro/serving/__init__.py") == "repro.serving"

    def test_rooted_fixture_tree(self, tmp_path):
        path = str(tmp_path / "repro" / "ppl" / "mod.py")
        assert module_name_for(path, str(tmp_path)) == "repro.ppl.mod"


# ------------------------------------------------------------------- project
class TestProject:
    def test_reexport_through_init_canonicalizes(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "repro/serving/__init__.py": """
                from repro.serving.workers import CohortWorkerPool
                """,
                "repro/serving/workers.py": """
                class CohortWorkerPool:
                    def submit_cohort(self):
                        pass
                """,
            },
        )
        assert (
            project.canonicalize("repro.serving.CohortWorkerPool")
            == "repro.serving.workers.CohortWorkerPool"
        )

    def test_chained_reexports_follow_to_the_definition(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "repro/__init__.py": """
                from repro.serving import Pool
                """,
                "repro/serving/__init__.py": """
                from repro.serving.workers import Pool
                """,
                "repro/serving/workers.py": """
                class Pool:
                    pass
                """,
            },
        )
        assert project.canonicalize("repro.Pool") == "repro.serving.workers.Pool"

    def test_unknown_names_pass_through_unchanged(self, tmp_path):
        project = build_project(tmp_path, {"repro/mod.py": "x = 1\n"})
        assert project.canonicalize("numpy.random.default_rng") == "numpy.random.default_rng"

    def test_method_resolution_walks_base_classes(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "repro/serving/base.py": """
                class Base:
                    def start(self):
                        pass
                """,
                "repro/serving/impl.py": """
                from repro.serving.base import Base

                class Impl(Base):
                    def stop(self):
                        pass
                """,
            },
        )
        impl = "repro.serving.impl.Impl"
        assert project.resolve_method(impl, "stop") == f"{impl}.stop"
        assert project.resolve_method(impl, "start") == "repro.serving.base.Base.start"
        assert project.resolve_method(impl, "missing") is None


# ---------------------------------------------------------- engine contracts
class TestEngineContracts:
    def test_every_file_is_parsed_exactly_once(self, tmp_path, monkeypatch):
        files = {
            "repro/serving/a.py": "import threading\nx = 1\n",
            "repro/serving/b.py": "from repro.serving.a import x\n",
            "repro/ppl/c.py": "y = 2\n",
        }
        for rel_path, source in files.items():
            path = tmp_path / rel_path
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        real_parse = ast.parse
        calls = []

        def counting_parse(source, *args, **kwargs):
            calls.append(kwargs.get("filename") or (args[0] if args else "<unknown>"))
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        run_analysis([str(tmp_path)], all_checkers())
        parsed = [name for name in calls if str(name).endswith(".py")]
        assert len(parsed) == len(files), parsed

    def test_whole_repo_run_fits_the_ci_budget(self):
        paths = [str(REPO_ROOT / name) for name in ("src", "tests", "benchmarks")]
        start = time.monotonic()
        run_analysis(paths, all_checkers())
        elapsed = time.monotonic() - start
        assert elapsed < 15.0, f"analysis took {elapsed:.1f}s, budget is 15s"
