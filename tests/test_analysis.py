"""Tests for repro.analysis: one positive and one negative case per rule,
suppressions, the baseline round-trip, the stable JSON schema, and the CLI
gate over the real tree."""

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    SCHEMA_KEYS,
    all_checkers,
    diff_against_baseline,
    load_baseline,
    run_analysis,
    save_baseline,
)
from repro.analysis.suppressions import is_suppressed, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(tmp_path, rel_path, source):
    """Write ``source`` at ``rel_path`` under tmp_path and lint the tree."""
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_analysis([str(tmp_path)], all_checkers())


def lint_files(tmp_path, files):
    """Write several ``rel_path -> source`` files and lint the whole tree.

    The multi-file variant of :func:`lint`, for the interprocedural rules:
    violations here deliberately span module boundaries.
    """
    for rel_path, source in files.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_analysis([str(tmp_path)], all_checkers())


def rules_of(findings):
    return {finding.rule for finding in findings}


# --------------------------------------------------------------------------- rng
class TestRngDiscipline:
    def test_module_call_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert "rng-module-call" in rules_of(findings)

    def test_sanctioned_file_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/common/rng.py",
            """
            import numpy as np
            x = np.random.rand(3)
            gen = np.random.default_rng(0)
            """,
        )
        assert rules_of(findings) == set()

    def test_direct_construction_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/data/mod.py",
            """
            import numpy as np
            gen = np.random.default_rng(1234)
            """,
        )
        assert "rng-direct-construction" in rules_of(findings)

    def test_repro_random_state_at_module_scope_allowed(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/data/mod.py",
            """
            from repro.common.rng import RandomState
            rng = RandomState(7)
            """,
        )
        assert rules_of(findings) == set()

    def test_construction_in_loop_flagged_in_hot_path(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            from repro.common.rng import RandomState
            def per_item(n):
                return [RandomState(i) for i in range(n)]
            """,
        )
        assert "rng-construction-in-loop" in rules_of(findings)

    def test_construction_in_loop_ignored_off_hot_path(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/utils/mod.py",
            """
            from repro.common.rng import RandomState
            def per_item(n):
                return [RandomState(i) for i in range(n)]
            """,
        )
        assert "rng-construction-in-loop" not in rules_of(findings)

    def test_stdlib_random_flagged(self, tmp_path):
        findings = lint(tmp_path, "repro/ppl/mod.py", "import random\n")
        assert "rng-stdlib-random" in rules_of(findings)

    def test_numpy_import_not_confused_with_stdlib_random(self, tmp_path):
        findings = lint(tmp_path, "repro/ppl/mod.py", "import numpy.random\n")
        assert "rng-stdlib-random" not in rules_of(findings)

    def test_time_entropy_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import time
            from repro.common.rng import RandomState
            rng = RandomState(int(time.time()))
            """,
        )
        assert "rng-time-entropy" in rules_of(findings)

    def test_constant_seed_has_no_time_entropy(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            from repro.common.rng import RandomState
            rng = RandomState(42)
            """,
        )
        assert "rng-time-entropy" not in rules_of(findings)


# ------------------------------------------------------------------------- locks
class TestLockDiscipline:
    def test_unlocked_write_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def locked(self):
                    with self._lock:
                        self.count += 1
                def unlocked(self):
                    self.count += 1
            """,
        )
        assert "lock-unlocked-write" in rules_of(findings)

    def test_consistently_locked_writes_pass(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def locked(self):
                    with self._lock:
                        self.count += 1
                def also_locked(self):
                    with self._lock:
                        self.count = 0
            """,
        )
        assert rules_of(findings) == set()

    def test_private_helper_inherits_callers_lock(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def public(self):
                    with self._lock:
                        self._bump()
                def other(self):
                    with self._lock:
                        self.count = 0
                def _bump(self):
                    self.count += 1
            """,
        )
        assert rules_of(findings) == set()

    def test_mutating_container_call_counts_as_write(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def locked(self, item):
                    with self._lock:
                        self.items.append(item)
                def unlocked(self):
                    self.items.clear()
            """,
        )
        assert "lock-unlocked-write" in rules_of(findings)

    def test_order_inversion_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pair:
                def __init__(self):
                    self._one = threading.Lock()
                    self._two = threading.Lock()
                def forward(self):
                    with self._one:
                        with self._two:
                            pass
                def backward(self):
                    with self._two:
                        with self._one:
                            pass
            """,
        )
        assert "lock-order-inversion" in rules_of(findings)

    def test_consistent_order_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pair:
                def __init__(self):
                    self._one = threading.Lock()
                    self._two = threading.Lock()
                def forward(self):
                    with self._one:
                        with self._two:
                            pass
                def also_forward(self):
                    with self._one:
                        with self._two:
                            pass
            """,
        )
        assert "lock-order-inversion" not in rules_of(findings)

    def test_blocking_call_under_lock_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            import time
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                def bad(self):
                    with self._lock:
                        time.sleep(1.0)
            """,
        )
        assert "lock-blocking-call" in rules_of(findings)

    def test_condition_wait_on_held_lock_allowed(self, tmp_path):
        # Condition(self._lock) aliases the lock it wraps; waiting on the held
        # condition releases it, so it is not a blocking call under the lock.
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)
                def drain(self):
                    with self._idle:
                        self._idle.wait(timeout=1.0)
            """,
        )
        assert "lock-blocking-call" not in rules_of(findings)


# ------------------------------------------------------------------------ shapes
class TestShapeContracts:
    def test_extra_required_param_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedThing:
                def sample_rows(self, rngs, extra):
                    return None
            """,
        )
        assert "shape-impl-signature" in rules_of(findings)

    def test_contract_signature_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedThing:
                def sample_rows(self, rngs=None):
                    return None
                def log_prob_rows(self, values):
                    return None
            """,
        )
        assert "shape-impl-signature" not in rules_of(findings)

    def test_missing_abstract_method_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedDistribution:
                pass
            class BatchedHalf(BatchedDistribution):
                def sample_rows(self, rngs=None):
                    return None
            """,
        )
        assert "shape-impl-missing" in rules_of(findings)

    def test_complete_subclass_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedDistribution:
                pass
            class BatchedFull(BatchedDistribution):
                def sample_rows(self, rngs=None):
                    return None
                def log_prob_rows(self, values):
                    return None
                def row_distribution(self, index):
                    return None
            """,
        )
        assert "shape-impl-missing" not in rules_of(findings)

    def test_callsite_missing_required_arg_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def score(batched):
                return batched.log_prob_rows()
            """,
        )
        assert "shape-callsite-arity" in rules_of(findings)

    def test_callsite_matching_contract_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def score(batched, values, rngs):
                batched.sample_rows(rngs)
                return batched.log_prob_rows(values)
            """,
        )
        assert "shape-callsite-arity" not in rules_of(findings)

    def test_callsite_unknown_keyword_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def draw(batched):
                return batched.sample_rows(generator=None)
            """,
        )
        assert "shape-callsite-arity" in rules_of(findings)


# ----------------------------------------------------------------------- pickle
class TestPickleSafety:
    def test_lambda_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch():
                return pickle.dumps(lambda x: x)
            """,
        )
        assert "pickle-lambda" in rules_of(findings)

    def test_plain_data_payload_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(payload):
                return pickle.dumps([payload, 1, 2])
            """,
        )
        assert rules_of(findings) == set()

    def test_generator_into_mp_queue_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import multiprocessing
            def dispatch(task_queue, items):
                task_queue.put((item for item in items))
            """,
        )
        assert "pickle-generator" in rules_of(findings)

    def test_thread_queue_put_is_not_a_pickle_boundary(self, tmp_path):
        # Without multiprocessing in the module, queue.Queue.put stays in
        # process and may carry anything.
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import queue
            def dispatch(task_queue, items):
                task_queue.put(lambda: items)
            """,
        )
        assert rules_of(findings) == set()

    def test_local_function_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch():
                def inner():
                    return 1
                return pickle.dumps(inner)
            """,
        )
        assert "pickle-local-function" in rules_of(findings)

    def test_open_handle_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(path):
                handle = open(path)
                return pickle.dumps(handle)
            """,
        )
        assert "pickle-open-handle" in rules_of(findings)

    def test_read_content_not_handle_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(path):
                data = open(path).read()
                return pickle.dumps(data)
            """,
        )
        assert "pickle-open-handle" not in rules_of(findings)

    def test_captured_lock_attribute_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                def dispatch(self):
                    return pickle.dumps(self._lock)
            """,
        )
        assert "pickle-lock" in rules_of(findings)


# ----------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_same_line_disable(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=rng-module-call
            """,
        )
        assert "rng-module-call" not in rules_of(findings)

    def test_line_above_disable(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            # repro-lint: disable=rng-module-call
            x = np.random.rand(3)
            """,
        )
        assert "rng-module-call" not in rules_of(findings)

    def test_disable_all(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=all
            """,
        )
        assert rules_of(findings) == set()

    def test_unrelated_rule_stays(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=rng-stdlib-random
            """,
        )
        assert "rng-module-call" in rules_of(findings)

    def test_comment_inside_string_is_inert(self):
        suppressions = parse_suppressions(
            'text = "# repro-lint: disable=rng-module-call"\n'
        )
        assert suppressions == {}

    def test_is_suppressed_window(self):
        suppressions = {10: {"rng-module-call"}}
        assert is_suppressed(suppressions, 10, "rng-module-call")
        assert is_suppressed(suppressions, 11, "rng-module-call")
        assert not is_suppressed(suppressions, 12, "rng-module-call")


# --------------------------------------------------------------------- baseline
class TestBaseline:
    def _findings(self):
        return [
            Finding("src/a.py", 3, "rng-module-call", "error", "msg one"),
            Finding("src/a.py", 9, "rng-module-call", "error", "msg one"),
            Finding("src/b.py", 5, "lock-unlocked-write", "error", "msg two"),
        ]

    def test_round_trip_is_clean(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = self._findings()
        save_baseline(str(path), findings)
        new, stale = diff_against_baseline(findings, load_baseline(str(path)))
        assert new == []
        assert stale == []

    def test_line_shift_stays_covered(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        shifted = [
            Finding(f.file, f.line + 40, f.rule, f.severity, f.message)
            for f in self._findings()
        ]
        new, stale = diff_against_baseline(shifted, load_baseline(str(path)))
        assert new == []
        assert stale == []

    def test_new_finding_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        extra = Finding("src/c.py", 1, "pickle-lambda", "error", "fresh")
        new, _ = diff_against_baseline(self._findings() + [extra], load_baseline(str(path)))
        assert new == [extra]

    def test_multiplicity_counts(self, tmp_path):
        # Two identical findings need two baseline entries; dropping one
        # baseline entry exposes the extra occurrence as new.
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings()[:1])
        new, _ = diff_against_baseline(self._findings()[:2], load_baseline(str(path)))
        assert len(new) == 1

    def test_fixed_finding_reported_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        new, stale = diff_against_baseline(self._findings()[:2], load_baseline(str(path)))
        assert new == []
        assert stale == [("src/b.py", "lock-unlocked-write", "msg two")]


# ----------------------------------------------------------------- JSON schema
class TestSchema:
    def test_to_dict_is_exactly_the_stable_schema(self):
        finding = Finding("src/a.py", 3, "rng-module-call", "error", "msg")
        payload = finding.to_dict()
        assert tuple(payload.keys()) == SCHEMA_KEYS == (
            "file", "line", "rule", "severity", "message",
        )
        assert Finding.from_dict(payload) == finding

    def test_rule_names_are_unique_across_checkers(self):
        seen = {}
        for checker in all_checkers():
            for rule in checker.rules:
                assert rule not in seen, f"{rule} claimed by {seen.get(rule)} and {checker.name}"
                seen[rule] = checker.name


# ------------------------------------------------------------------------- CLI
class TestCommandLine:
    def _run(self, *args, cwd=None):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or str(REPO_ROOT),
            env=env,
        )

    def test_repo_tree_is_clean_against_committed_baseline(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_fails_naming_the_rule(self, tmp_path):
        bad = tmp_path / "repro" / "ppl" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "rng-module-call" in result.stdout

    def test_json_output_carries_the_schema(self, tmp_path):
        bad = tmp_path / "repro" / "ppl" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run(str(tmp_path), "--no-baseline", "--output", "json")
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["new"], report
        assert tuple(report["new"][0].keys()) == ("file", "line", "rule", "severity", "message")

    def test_list_rules_covers_every_checker(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for checker in all_checkers():
            assert checker.name in result.stdout
            for rule in checker.rules:
                assert rule in result.stdout

    def test_syntax_error_fails_the_gate(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "syntax-error" in result.stdout


# ------------------------------------------------- interprocedural lock rules
class TestInterproceduralLocks:
    def test_blocking_callee_in_another_module_flagged_at_the_call_site(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/svc.py": """
                import threading
                from repro.serving.helper import finish_request

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def bump(self):
                        with self._lock:
                            finish_request(self)
                """,
                "repro/serving/helper.py": """
                import time

                def finish_request(svc):
                    time.sleep(0.1)
                """,
            },
        )
        blocking = [f for f in findings if f.rule == "lock-blocking-call"]
        assert len(blocking) == 1
        assert "svc.py" in blocking[0].file
        assert "finish_request" in blocking[0].message
        assert "time.sleep" in blocking[0].message  # the witness chain

    def test_private_helper_in_another_module_inherits_the_callers_lock(self, tmp_path):
        # _apply writes without a lexical lock scope, but its only call site
        # (in a different module) holds the lock -> no unlocked-write.
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/svc.py": """
                import threading
                from repro.serving.state import Counter

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.counter = Counter()

                    def bump(self, counter):
                        with self._lock:
                            counter._apply(1)
                """,
                "repro/serving/state.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._value = 0

                    def bump(self):
                        with self._lock:
                            self._apply(1)

                    def _apply(self, delta):
                        self._value += delta
                """,
            },
        )
        assert "lock-unlocked-write" not in rules_of(findings)

    def test_callback_registered_through_a_constructor_is_traced(self, tmp_path):
        # Sched calls self._cb() under its lock; the callback is Service's
        # bound method, injected via Sched(cb=...) in another module, and it
        # blocks -> blocking-under-lock at the scheduler's call site.
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/sched.py": """
                import threading

                class Sched:
                    def __init__(self, cb):
                        self._lock = threading.Lock()
                        self._cb = cb

                    def run(self):
                        with self._lock:
                            self._cb()
                """,
                "repro/serving/svc.py": """
                import queue
                from repro.serving.sched import Sched

                class Service:
                    def __init__(self):
                        self._queue = queue.Queue()
                        self._sched = Sched(cb=self._wait_for_work)

                    def _wait_for_work(self):
                        return self._queue.get()
                """,
            },
        )
        blocking = [f for f in findings if f.rule == "lock-blocking-call"]
        assert blocking, rules_of(findings)
        # The callback inherits the scheduler's lock on entry, so the finding
        # lands at the deepest site — the blocking call itself — naming the
        # foreign lock that is held there.
        assert any(
            "svc.py" in f.file and "Sched._lock" in f.message for f in blocking
        ), [f.message for f in blocking]

    def test_lock_order_inversion_across_modules(self, tmp_path):
        # a.forward holds a._LOCK and calls into b (which takes b._LOCK);
        # b.backward holds b._LOCK and calls into a (which takes a._LOCK).
        # Neither file alone shows a nesting — only the cross-module
        # transitive-acquisition edges close the cycle.
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/a.py": """
                import threading
                from repro.serving import b

                _LOCK = threading.Lock()

                def forward():
                    with _LOCK:
                        b.take()

                def take():
                    with _LOCK:
                        pass
                """,
                "repro/serving/b.py": """
                import threading
                from repro.serving import a

                _LOCK = threading.Lock()

                def backward():
                    with _LOCK:
                        a.take()

                def take():
                    with _LOCK:
                        pass
                """,
            },
        )
        inversions = [f for f in findings if f.rule == "lock-order-inversion"]
        assert inversions, rules_of(findings)

    def test_consistent_cross_module_order_passes(self, tmp_path):
        # Same shape as the inversion fixture, but every path agrees on the
        # a-before-b order, so the transitive edges stay acyclic.
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/a.py": """
                import threading
                from repro.serving import b

                _LOCK = threading.Lock()

                def forward():
                    with _LOCK:
                        b.take()

                def also_forward():
                    with _LOCK:
                        b.take()
                """,
                "repro/serving/b.py": """
                import threading

                _LOCK = threading.Lock()

                def take():
                    with _LOCK:
                        pass

                def backward():
                    with _LOCK:
                        pass
                """,
            },
        )
        assert "lock-order-inversion" not in rules_of(findings)


# ------------------------------------------------------- rng stream ownership
class TestRngOwnership:
    def test_construction_below_a_dispatched_job_body_flagged(self, tmp_path):
        # The construction hides one call below the dispatched callable, in
        # another module: only the call-graph fixpoint can see it.
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/pooluser.py": """
                from repro.serving.jobs import job_body

                def launch(pool):
                    for index in range(4):
                        pool.submit(job_body, index)
                """,
                "repro/serving/jobs.py": """
                from repro.ppl.draws import draw_some

                def job_body(index):
                    return draw_some(index)
                """,
                "repro/ppl/draws.py": """
                from repro.common.rng import RandomState

                def draw_some(index):
                    rng = RandomState(index)
                    return rng
                """,
            },
        )
        constructions = [f for f in findings if f.rule == "rng-job-construction"]
        assert constructions, rules_of(findings)
        assert any("draws.py" in f.file for f in constructions)
        assert "dispatched" in constructions[0].message

    def test_parent_derived_spawn_per_job_passes(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/pooluser.py": """
                from repro.common.rng import get_rng
                from repro.serving.jobs import job_body

                def launch(pool, base):
                    for index in range(4):
                        child = base.spawn((7, index))
                        pool.submit(job_body, child)
                """,
                "repro/serving/jobs.py": """
                def job_body(rng):
                    return rng.generator.normal()
                """,
            },
        )
        assert "rng-job-construction" not in rules_of(findings)
        assert "rng-shared-stream" not in rules_of(findings)

    def test_one_stream_dispatched_from_a_loop_flagged(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/pooluser.py": """
                from repro.common.rng import get_rng
                from repro.serving.jobs import job_body

                def launch(pool):
                    rng = get_rng()
                    for index in range(4):
                        pool.submit(job_body, rng)
                """,
                "repro/serving/jobs.py": """
                def job_body(rng):
                    return rng.generator.normal()
                """,
            },
        )
        shared = [f for f in findings if f.rule == "rng-shared-stream"]
        assert shared, rules_of(findings)
        assert "loop" in shared[0].message

    def test_one_stream_reaching_two_dispatch_sites_flagged(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/pooluser.py": """
                from repro.common.rng import get_rng
                from repro.serving.jobs import job_body, other_body

                def launch(pool):
                    rng = get_rng()
                    pool.submit(job_body, rng)
                    pool.submit(other_body, rng)
                """,
                "repro/serving/jobs.py": """
                def job_body(rng):
                    return rng.generator.normal()

                def other_body(rng):
                    return rng.generator.normal()
                """,
            },
        )
        shared = [f for f in findings if f.rule == "rng-shared-stream"]
        assert shared, rules_of(findings)
        assert "concurrent consumers" in shared[0].message


# ---------------------------------------------------------- future resolution
class TestFutureResolution:
    def test_branch_that_skips_resolution_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from concurrent.futures import Future

            def handle(ready):
                fut = Future()
                if ready:
                    fut.set_result(1)
                return None
            """,
        )
        leaks = [f for f in findings if f.rule == "future-unresolved"]
        assert leaks, rules_of(findings)
        assert "some paths" in leaks[0].message

    def test_resolution_on_every_branch_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from concurrent.futures import Future

            def handle(ready):
                fut = Future()
                if ready:
                    fut.set_result(1)
                else:
                    fut.set_exception(ValueError("not ready"))
                return None
            """,
        )
        assert "future-unresolved" not in rules_of(findings)

    def test_try_except_resolution_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from concurrent.futures import Future

            def handle(work):
                fut = Future()
                try:
                    value = work()
                except Exception as error:
                    fut.set_exception(error)
                else:
                    fut.set_result(value)
                return None
            """,
        )
        assert "future-unresolved" not in rules_of(findings)

    def test_returned_future_is_a_handoff_not_a_leak(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from concurrent.futures import Future

            def admit():
                fut = Future()
                return fut
            """,
        )
        assert "future-unresolved" not in rules_of(findings)

    def test_stored_future_is_a_handoff_not_a_leak(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from concurrent.futures import Future

            class Service:
                def admit(self, key):
                    fut = Future()
                    self._inflight[key] = fut
            """,
        )
        assert "future-unresolved" not in rules_of(findings)

    def test_helper_in_another_module_that_resolves_counts(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/svc.py": """
                from concurrent.futures import Future
                from repro.serving.helper import finish

                def handle(value):
                    fut = Future()
                    finish(fut, value)
                """,
                "repro/serving/helper.py": """
                def finish(future, value):
                    future.set_result(value)
                """,
            },
        )
        assert "future-unresolved" not in rules_of(findings)

    def test_helper_that_resolves_on_some_paths_only_flagged(self, tmp_path):
        findings = lint_files(
            tmp_path,
            {
                "repro/serving/svc.py": """
                from concurrent.futures import Future
                from repro.serving.helper import finish

                def handle(value):
                    fut = Future()
                    finish(fut, value)
                """,
                "repro/serving/helper.py": """
                def finish(future, value):
                    if value is not None:
                        future.set_result(value)
                """,
            },
        )
        assert "future-unresolved" in rules_of(findings)


# ----------------------------------------------------- deterministic iteration
class TestDeterministicIteration:
    def test_for_loop_over_a_set_on_a_hot_path_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            def drain(items):
                pending = set(items)
                for item in pending:
                    print(item)
            """,
        )
        assert "det-set-iteration" in rules_of(findings)

    def test_set_attribute_seen_from_another_method(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            class Service:
                def __init__(self):
                    self._pending = set()

                def snapshot(self):
                    return list(self._pending)
            """,
        )
        assert "det-set-iteration" in rules_of(findings)

    def test_sorted_iteration_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            def drain(items):
                pending = set(items)
                for item in sorted(pending):
                    print(item)
                return len(pending)
            """,
        )
        assert "det-set-iteration" not in rules_of(findings)

    def test_cold_path_is_out_of_scope(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/analysis/mod.py",
            """
            def drain(items):
                pending = set(items)
                for item in pending:
                    print(item)
            """,
        )
        assert "det-set-iteration" not in rules_of(findings)

    def test_arbitrary_set_pop_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            def steal(ready):
                work = set(ready)
                return work.pop()
            """,
        )
        assert "det-set-iteration" in rules_of(findings)


# --------------------------------------------------------- plan immutability
class TestPlanImmutability:
    def test_leased_plan_attribute_write_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/inference/engine.py",
            """
            def run(cache, network):
                plan, scratch = cache.lease(network, 8)
                plan.bucket_size = 16
            """,
        )
        assert "plan-attribute-write" in rules_of(findings)

    def test_compile_plan_binding_tracked(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/svc.py",
            """
            from repro.ppl.inference.plans import compile_plan

            def warm(network, trace_type, exemplar, flags):
                compiled = compile_plan(network, trace_type, exemplar, flags, 8)
                compiled.network_version = 0
            """,
        )
        assert "plan-attribute-write" in rules_of(findings)

    def test_setattr_bypass_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/inference/engine.py",
            """
            def patch(plan):
                object.__setattr__(plan, "steps", ())
            """,
        )
        assert "plan-setattr-bypass" in rules_of(findings)

    def test_plan_step_iteration_variable_tracked(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/inference/engine.py",
            """
            def mutate(plan):
                for step in plan.steps:
                    step.kind = "fallback"
            """,
        )
        assert "plan-attribute-write" in rules_of(findings)

    def test_owning_module_is_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/inference/plans.py",
            """
            def fill(plan):
                object.__setattr__(plan, "steps", ())
                plan.bucket_size = 4
            """,
        )
        assert "plan-attribute-write" not in rules_of(findings)
        assert "plan-setattr-bypass" not in rules_of(findings)

    def test_scratch_writes_and_plan_reads_pass(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/inference/engine.py",
            """
            def run(cache, network, rows):
                plan, scratch = cache.lease(network, 8)
                scratch.cursor = 0
                scratch.lstm_input[:4] = rows
                return plan.bucket_size
            """,
        )
        assert "plan-attribute-write" not in rules_of(findings)


# ----------------------------------------------------------- CLI satellites
class TestCliSatellites:
    WARNING_ONLY_TREE = """
    import threading
    import time

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()

        def slow(self):
            with self._lock:
                time.sleep(1.0)
    """

    def _run(self, *args, cwd=None):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or str(REPO_ROOT),
            env=env,
        )

    def _write(self, tmp_path, rel_path, source):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))

    def test_warnings_are_reported_but_do_not_fail_the_default_gate(self, tmp_path):
        self._write(tmp_path, "repro/serving/mod.py", self.WARNING_ONLY_TREE)
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "lock-blocking-call" in result.stdout  # reported anyway

    def test_severity_warning_gates_on_warnings(self, tmp_path):
        self._write(tmp_path, "repro/serving/mod.py", self.WARNING_ONLY_TREE)
        result = self._run(str(tmp_path), "--no-baseline", "--severity", "warning")
        assert result.returncode == 1, result.stdout + result.stderr

    def test_errors_fail_the_default_gate(self, tmp_path):
        self._write(
            tmp_path,
            "repro/ppl/mod.py",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 1

    def test_github_format_emits_workflow_annotations(self, tmp_path):
        self._write(
            tmp_path,
            "repro/ppl/mod.py",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        result = self._run(str(tmp_path), "--no-baseline", "--format", "github")
        assert result.returncode == 1
        line = [l for l in result.stdout.splitlines() if l.startswith("::error ")][0]
        assert "file=" in line and ",line=" in line and "rng-module-call" in line

    def test_format_and_output_must_agree(self, tmp_path):
        result = self._run("--format", "github", "--output", "json")
        assert result.returncode == 2

    def _git(self, cwd, *args):
        return subprocess.run(
            [
                "git", "-c", "user.email=ci@example.com", "-c", "user.name=ci",
                *args,
            ],
            capture_output=True,
            text=True,
            cwd=str(cwd),
            check=True,
        )

    def test_changed_only_reports_findings_in_new_files(self, tmp_path):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        self._git(tmp_path, "init", "-q")
        self._write(tmp_path, "repro/ppl/clean.py", "x = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "clean tree")
        self._write(
            tmp_path, "repro/ppl/mod.py", "import numpy as np\nx = np.random.rand(3)\n"
        )
        result = self._run("repro", "--no-baseline", "--changed-only", cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "rng-module-call" in result.stdout

    def test_changed_only_filters_out_preexisting_findings(self, tmp_path):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        self._git(tmp_path, "init", "-q")
        self._write(
            tmp_path, "repro/ppl/mod.py", "import numpy as np\nx = np.random.rand(3)\n"
        )
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "tree with pre-existing debt")
        self._write(tmp_path, "repro/ppl/unrelated.py", "y = 2\n")
        # The whole-program run still sees the old finding...
        full = self._run("repro", "--no-baseline", cwd=tmp_path)
        assert full.returncode == 1
        # ...but the changed-only gate only charges the files this change touched.
        scoped = self._run("repro", "--no-baseline", "--changed-only", cwd=tmp_path)
        assert scoped.returncode == 0, scoped.stdout + scoped.stderr
