"""Tests for repro.analysis: one positive and one negative case per rule,
suppressions, the baseline round-trip, the stable JSON schema, and the CLI
gate over the real tree."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    SCHEMA_KEYS,
    all_checkers,
    diff_against_baseline,
    load_baseline,
    run_analysis,
    save_baseline,
)
from repro.analysis.suppressions import is_suppressed, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(tmp_path, rel_path, source):
    """Write ``source`` at ``rel_path`` under tmp_path and lint the tree."""
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_analysis([str(tmp_path)], all_checkers())


def rules_of(findings):
    return {finding.rule for finding in findings}


# --------------------------------------------------------------------------- rng
class TestRngDiscipline:
    def test_module_call_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert "rng-module-call" in rules_of(findings)

    def test_sanctioned_file_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/common/rng.py",
            """
            import numpy as np
            x = np.random.rand(3)
            gen = np.random.default_rng(0)
            """,
        )
        assert rules_of(findings) == set()

    def test_direct_construction_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/data/mod.py",
            """
            import numpy as np
            gen = np.random.default_rng(1234)
            """,
        )
        assert "rng-direct-construction" in rules_of(findings)

    def test_repro_random_state_at_module_scope_allowed(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/data/mod.py",
            """
            from repro.common.rng import RandomState
            rng = RandomState(7)
            """,
        )
        assert rules_of(findings) == set()

    def test_construction_in_loop_flagged_in_hot_path(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            from repro.common.rng import RandomState
            def per_item(n):
                return [RandomState(i) for i in range(n)]
            """,
        )
        assert "rng-construction-in-loop" in rules_of(findings)

    def test_construction_in_loop_ignored_off_hot_path(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/utils/mod.py",
            """
            from repro.common.rng import RandomState
            def per_item(n):
                return [RandomState(i) for i in range(n)]
            """,
        )
        assert "rng-construction-in-loop" not in rules_of(findings)

    def test_stdlib_random_flagged(self, tmp_path):
        findings = lint(tmp_path, "repro/ppl/mod.py", "import random\n")
        assert "rng-stdlib-random" in rules_of(findings)

    def test_numpy_import_not_confused_with_stdlib_random(self, tmp_path):
        findings = lint(tmp_path, "repro/ppl/mod.py", "import numpy.random\n")
        assert "rng-stdlib-random" not in rules_of(findings)

    def test_time_entropy_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import time
            from repro.common.rng import RandomState
            rng = RandomState(int(time.time()))
            """,
        )
        assert "rng-time-entropy" in rules_of(findings)

    def test_constant_seed_has_no_time_entropy(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            from repro.common.rng import RandomState
            rng = RandomState(42)
            """,
        )
        assert "rng-time-entropy" not in rules_of(findings)


# ------------------------------------------------------------------------- locks
class TestLockDiscipline:
    def test_unlocked_write_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def locked(self):
                    with self._lock:
                        self.count += 1
                def unlocked(self):
                    self.count += 1
            """,
        )
        assert "lock-unlocked-write" in rules_of(findings)

    def test_consistently_locked_writes_pass(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def locked(self):
                    with self._lock:
                        self.count += 1
                def also_locked(self):
                    with self._lock:
                        self.count = 0
            """,
        )
        assert rules_of(findings) == set()

    def test_private_helper_inherits_callers_lock(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
                def public(self):
                    with self._lock:
                        self._bump()
                def other(self):
                    with self._lock:
                        self.count = 0
                def _bump(self):
                    self.count += 1
            """,
        )
        assert rules_of(findings) == set()

    def test_mutating_container_call_counts_as_write(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []
                def locked(self, item):
                    with self._lock:
                        self.items.append(item)
                def unlocked(self):
                    self.items.clear()
            """,
        )
        assert "lock-unlocked-write" in rules_of(findings)

    def test_order_inversion_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pair:
                def __init__(self):
                    self._one = threading.Lock()
                    self._two = threading.Lock()
                def forward(self):
                    with self._one:
                        with self._two:
                            pass
                def backward(self):
                    with self._two:
                        with self._one:
                            pass
            """,
        )
        assert "lock-order-inversion" in rules_of(findings)

    def test_consistent_order_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pair:
                def __init__(self):
                    self._one = threading.Lock()
                    self._two = threading.Lock()
                def forward(self):
                    with self._one:
                        with self._two:
                            pass
                def also_forward(self):
                    with self._one:
                        with self._two:
                            pass
            """,
        )
        assert "lock-order-inversion" not in rules_of(findings)

    def test_blocking_call_under_lock_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            import time
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                def bad(self):
                    with self._lock:
                        time.sleep(1.0)
            """,
        )
        assert "lock-blocking-call" in rules_of(findings)

    def test_condition_wait_on_held_lock_allowed(self, tmp_path):
        # Condition(self._lock) aliases the lock it wraps; waiting on the held
        # condition releases it, so it is not a blocking call under the lock.
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)
                def drain(self):
                    with self._idle:
                        self._idle.wait(timeout=1.0)
            """,
        )
        assert "lock-blocking-call" not in rules_of(findings)


# ------------------------------------------------------------------------ shapes
class TestShapeContracts:
    def test_extra_required_param_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedThing:
                def sample_rows(self, rngs, extra):
                    return None
            """,
        )
        assert "shape-impl-signature" in rules_of(findings)

    def test_contract_signature_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedThing:
                def sample_rows(self, rngs=None):
                    return None
                def log_prob_rows(self, values):
                    return None
            """,
        )
        assert "shape-impl-signature" not in rules_of(findings)

    def test_missing_abstract_method_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedDistribution:
                pass
            class BatchedHalf(BatchedDistribution):
                def sample_rows(self, rngs=None):
                    return None
            """,
        )
        assert "shape-impl-missing" in rules_of(findings)

    def test_complete_subclass_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/distributions/mod.py",
            """
            class BatchedDistribution:
                pass
            class BatchedFull(BatchedDistribution):
                def sample_rows(self, rngs=None):
                    return None
                def log_prob_rows(self, values):
                    return None
                def row_distribution(self, index):
                    return None
            """,
        )
        assert "shape-impl-missing" not in rules_of(findings)

    def test_callsite_missing_required_arg_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def score(batched):
                return batched.log_prob_rows()
            """,
        )
        assert "shape-callsite-arity" in rules_of(findings)

    def test_callsite_matching_contract_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def score(batched, values, rngs):
                batched.sample_rows(rngs)
                return batched.log_prob_rows(values)
            """,
        )
        assert "shape-callsite-arity" not in rules_of(findings)

    def test_callsite_unknown_keyword_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            def draw(batched):
                return batched.sample_rows(generator=None)
            """,
        )
        assert "shape-callsite-arity" in rules_of(findings)


# ----------------------------------------------------------------------- pickle
class TestPickleSafety:
    def test_lambda_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch():
                return pickle.dumps(lambda x: x)
            """,
        )
        assert "pickle-lambda" in rules_of(findings)

    def test_plain_data_payload_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(payload):
                return pickle.dumps([payload, 1, 2])
            """,
        )
        assert rules_of(findings) == set()

    def test_generator_into_mp_queue_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import multiprocessing
            def dispatch(task_queue, items):
                task_queue.put((item for item in items))
            """,
        )
        assert "pickle-generator" in rules_of(findings)

    def test_thread_queue_put_is_not_a_pickle_boundary(self, tmp_path):
        # Without multiprocessing in the module, queue.Queue.put stays in
        # process and may carry anything.
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import queue
            def dispatch(task_queue, items):
                task_queue.put(lambda: items)
            """,
        )
        assert rules_of(findings) == set()

    def test_local_function_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch():
                def inner():
                    return 1
                return pickle.dumps(inner)
            """,
        )
        assert "pickle-local-function" in rules_of(findings)

    def test_open_handle_payload_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(path):
                handle = open(path)
                return pickle.dumps(handle)
            """,
        )
        assert "pickle-open-handle" in rules_of(findings)

    def test_read_content_not_handle_passes(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            def dispatch(path):
                data = open(path).read()
                return pickle.dumps(data)
            """,
        )
        assert "pickle-open-handle" not in rules_of(findings)

    def test_captured_lock_attribute_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/serving/mod.py",
            """
            import pickle
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                def dispatch(self):
                    return pickle.dumps(self._lock)
            """,
        )
        assert "pickle-lock" in rules_of(findings)


# ----------------------------------------------------------------- suppressions
class TestSuppressions:
    def test_same_line_disable(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=rng-module-call
            """,
        )
        assert "rng-module-call" not in rules_of(findings)

    def test_line_above_disable(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            # repro-lint: disable=rng-module-call
            x = np.random.rand(3)
            """,
        )
        assert "rng-module-call" not in rules_of(findings)

    def test_disable_all(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=all
            """,
        )
        assert rules_of(findings) == set()

    def test_unrelated_rule_stays(self, tmp_path):
        findings = lint(
            tmp_path,
            "repro/ppl/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)  # repro-lint: disable=rng-stdlib-random
            """,
        )
        assert "rng-module-call" in rules_of(findings)

    def test_comment_inside_string_is_inert(self):
        suppressions = parse_suppressions(
            'text = "# repro-lint: disable=rng-module-call"\n'
        )
        assert suppressions == {}

    def test_is_suppressed_window(self):
        suppressions = {10: {"rng-module-call"}}
        assert is_suppressed(suppressions, 10, "rng-module-call")
        assert is_suppressed(suppressions, 11, "rng-module-call")
        assert not is_suppressed(suppressions, 12, "rng-module-call")


# --------------------------------------------------------------------- baseline
class TestBaseline:
    def _findings(self):
        return [
            Finding("src/a.py", 3, "rng-module-call", "error", "msg one"),
            Finding("src/a.py", 9, "rng-module-call", "error", "msg one"),
            Finding("src/b.py", 5, "lock-unlocked-write", "error", "msg two"),
        ]

    def test_round_trip_is_clean(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = self._findings()
        save_baseline(str(path), findings)
        new, stale = diff_against_baseline(findings, load_baseline(str(path)))
        assert new == []
        assert stale == []

    def test_line_shift_stays_covered(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        shifted = [
            Finding(f.file, f.line + 40, f.rule, f.severity, f.message)
            for f in self._findings()
        ]
        new, stale = diff_against_baseline(shifted, load_baseline(str(path)))
        assert new == []
        assert stale == []

    def test_new_finding_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        extra = Finding("src/c.py", 1, "pickle-lambda", "error", "fresh")
        new, _ = diff_against_baseline(self._findings() + [extra], load_baseline(str(path)))
        assert new == [extra]

    def test_multiplicity_counts(self, tmp_path):
        # Two identical findings need two baseline entries; dropping one
        # baseline entry exposes the extra occurrence as new.
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings()[:1])
        new, _ = diff_against_baseline(self._findings()[:2], load_baseline(str(path)))
        assert len(new) == 1

    def test_fixed_finding_reported_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), self._findings())
        new, stale = diff_against_baseline(self._findings()[:2], load_baseline(str(path)))
        assert new == []
        assert stale == [("src/b.py", "lock-unlocked-write", "msg two")]


# ----------------------------------------------------------------- JSON schema
class TestSchema:
    def test_to_dict_is_exactly_the_stable_schema(self):
        finding = Finding("src/a.py", 3, "rng-module-call", "error", "msg")
        payload = finding.to_dict()
        assert tuple(payload.keys()) == SCHEMA_KEYS == (
            "file", "line", "rule", "severity", "message",
        )
        assert Finding.from_dict(payload) == finding

    def test_rule_names_are_unique_across_checkers(self):
        seen = {}
        for checker in all_checkers():
            for rule in checker.rules:
                assert rule not in seen, f"{rule} claimed by {seen.get(rule)} and {checker.name}"
                seen[rule] = checker.name


# ------------------------------------------------------------------------- CLI
class TestCommandLine:
    def _run(self, *args, cwd=None):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or str(REPO_ROOT),
            env=env,
        )

    def test_repo_tree_is_clean_against_committed_baseline(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_fails_naming_the_rule(self, tmp_path):
        bad = tmp_path / "repro" / "ppl" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "rng-module-call" in result.stdout

    def test_json_output_carries_the_schema(self, tmp_path):
        bad = tmp_path / "repro" / "ppl" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run(str(tmp_path), "--no-baseline", "--output", "json")
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["new"], report
        assert tuple(report["new"][0].keys()) == ("file", "line", "rule", "severity", "message")

    def test_list_rules_covers_every_checker(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for checker in all_checkers():
            assert checker.name in result.stdout
            for rule in checker.rules:
                assert rule in result.stdout

    def test_syntax_error_fails_the_gate(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = self._run(str(tmp_path), "--no-baseline")
        assert result.returncode == 1
        assert "syntax-error" in result.stdout
