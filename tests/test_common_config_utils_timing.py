"""Tests for repro.common config, utils and timing."""

import time

import numpy as np
import pytest

from repro.common.config import Config, get_config, set_config
from repro.common.timing import PhaseTimer, Timer
from repro.common.utils import (
    ensure_list,
    flatten_dict,
    format_bytes,
    format_seconds,
    prod,
    weighted_quantile,
)


class TestConfig:
    def test_defaults_are_scaled_down(self):
        cfg = Config()
        assert cfg.lstm_hidden < 512
        assert cfg.observation_shape != (20, 35, 35)

    def test_scaled_to_paper_matches_section_4_3(self):
        cfg = Config().scaled_to_paper()
        assert cfg.observation_shape == (20, 35, 35)
        assert cfg.lstm_hidden == 512
        assert cfg.proposal_mixture_components == 10
        assert cfg.observation_embedding_dim == 256
        assert cfg.address_embedding_dim == 64
        assert cfg.sample_embedding_dim == 4

    def test_replace_returns_copy(self):
        cfg = Config()
        other = cfg.replace(lstm_hidden=99)
        assert other.lstm_hidden == 99
        assert cfg.lstm_hidden != 99

    def test_set_config_updates_global(self):
        original = get_config()
        try:
            set_config(lstm_hidden=123)
            assert get_config().lstm_hidden == 123
        finally:
            set_config(original)


class TestUtils:
    def test_prod(self):
        assert prod([2, 3, 4]) == 24
        assert prod([]) == 1

    def test_ensure_list(self):
        assert ensure_list(3) == [3]
        assert ensure_list([1, 2]) == [1, 2]
        assert ensure_list((1, 2)) == [1, 2]

    def test_flatten_dict(self):
        nested = {"a": {"b": 1, "c": {"d": 2}}, "e": 3}
        assert flatten_dict(nested) == {"a.b": 1, "a.c.d": 2, "e": 3}

    def test_format_bytes(self):
        assert format_bytes(1.7 * 1024**4).endswith("TB")
        assert format_bytes(10) == "10.0 B"

    def test_format_seconds_ranges(self):
        assert format_seconds(2e-6).endswith("us")
        assert format_seconds(0.02).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(120).endswith("min")
        assert format_seconds(7200).endswith("h")

    def test_weighted_quantile_unweighted_median(self):
        values = np.arange(1, 101, dtype=float)
        median = weighted_quantile(values, 0.5)
        assert abs(float(median[0]) - 50.5) < 1.0

    def test_weighted_quantile_respects_weights(self):
        values = np.array([0.0, 1.0])
        weights = np.array([0.01, 0.99])
        q = weighted_quantile(values, 0.5, weights)
        assert float(q[0]) > 0.5

    def test_weighted_quantile_validates(self):
        with pytest.raises(ValueError):
            weighted_quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            weighted_quantile([], 0.5)
        with pytest.raises(ValueError):
            weighted_quantile([1.0, 2.0], 0.5, [1.0])


class TestTiming:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.count == 2
        assert timer.total >= 0.02
        assert timer.mean > 0
        timer.reset()
        assert timer.count == 0

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_phase_timer_records_phases(self):
        timer = PhaseTimer()
        with timer.phase("forward"):
            time.sleep(0.005)
        timer.add("sync", 0.5)
        record = timer.end_iteration()
        assert record["sync"] == pytest.approx(0.5)
        assert record["forward"] > 0
        assert record.total() > 0.5

    def test_phase_timer_record_event_is_independent_of_current_iteration(self):
        timer = PhaseTimer()
        timer.add("forward", 0.25)  # accumulating iteration in progress
        event = timer.record_event("cohort_execution", 0.125)
        assert event["cohort_execution"] == pytest.approx(0.125)
        # The in-progress iteration is untouched by the event record.
        record = timer.end_iteration()
        assert record.phases == {"forward": pytest.approx(0.25)}
        assert timer.total_by_phase() == {
            "cohort_execution": pytest.approx(0.125),
            "forward": pytest.approx(0.25),
        }

    def test_phase_timer_mean_by_phase(self):
        timer = PhaseTimer()
        for value in (1.0, 3.0):
            timer.add("backward", value)
            timer.end_iteration()
        assert timer.mean_by_phase()["backward"] == pytest.approx(2.0)
        assert timer.total_by_phase()["backward"] == pytest.approx(4.0)
        timer.reset()
        assert timer.records == []
