"""End-to-end tests of the inference-compilation engine."""

import os

import numpy as np
import pytest

from repro.common.config import Config
from repro.common.rng import RandomState
from repro.ppl import FunctionModel
from repro.ppl.inference import RandomWalkMetropolis, run_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from tests.conftest import mixed_program


@pytest.fixture
def ic_setup(small_config):
    model = FunctionModel(mixed_program, name="mixed")
    engine = InferenceCompilation(
        config=small_config,
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=small_config.observation_embedding_dim),
        observe_key="obs",
        rng=RandomState(0),
    )
    return model, engine


def observation_for(mu, k):
    return np.array([mu, mu + k, mu - k, 2 * mu])


class TestTraining:
    def test_online_training_reduces_loss(self, ic_setup):
        model, engine = ic_setup
        history = engine.train(model, num_traces=1200, minibatch_size=24, learning_rate=3e-3)
        assert len(history.losses) == 1200 // 24
        assert history.losses[-1] < history.losses[0]
        assert history.final_loss == history.losses[-1]
        assert history.traces_seen[-1] == 1200

    def test_offline_training_with_dataset(self, ic_setup, rng):
        model, engine = ic_setup
        dataset = model.prior_traces(300, rng=rng)
        history = engine.train(dataset=dataset, num_traces=900, minibatch_size=30, learning_rate=3e-3)
        assert engine.network._frozen
        assert history.losses[-1] < history.losses[0]

    def test_network_grows_with_new_addresses_online(self, ic_setup):
        model, engine = ic_setup
        engine.train(model, num_traces=60, minibatch_size=20)
        assert engine.network.num_addresses == 2
        assert engine.network.num_parameters() == history_params(engine)

    def test_lr_schedule_poly2_decays(self, ic_setup):
        model, engine = ic_setup
        history = engine.train(
            model, num_traces=400, minibatch_size=20, learning_rate=1e-3,
            lr_schedule="poly2", end_learning_rate=1e-5,
        )
        assert history.learning_rates[-1] < history.learning_rates[0]

    def test_larc_option(self, ic_setup):
        model, engine = ic_setup
        history = engine.train(model, num_traces=200, minibatch_size=20, larc=True)
        assert len(history.losses) == 10

    def test_requires_model_or_dataset(self, ic_setup):
        _, engine = ic_setup
        with pytest.raises(ValueError):
            engine.train()

    def test_unknown_optimizer_rejected(self, ic_setup):
        model, engine = ic_setup
        with pytest.raises(ValueError):
            engine.train(model, num_traces=20, minibatch_size=10, optimizer="bogus")

    def test_callback_invoked(self, ic_setup):
        model, engine = ic_setup
        seen = []
        engine.train(model, num_traces=60, minibatch_size=20, callback=lambda i, l: seen.append(i))
        assert seen == [0, 1, 2]


def history_params(engine):
    return engine.history.num_parameters[-1]


class TestAmortizedInference:
    def test_posterior_recovers_latents(self, ic_setup):
        model, engine = ic_setup
        engine.train(model, num_traces=2500, minibatch_size=32, learning_rate=3e-3)
        mu_true, k_true = 0.8, 1
        posterior = engine.posterior(model, {"obs": observation_for(mu_true, k_true)}, num_traces=200)
        assert posterior.extract("mu").mean == pytest.approx(mu_true, abs=0.25)
        k_probs = posterior.extract("k").categorical_probabilities()
        assert max(k_probs, key=k_probs.get) == k_true

    def test_ic_beats_prior_importance_sampling_in_ess(self, ic_setup):
        model, engine = ic_setup
        engine.train(model, num_traces=2500, minibatch_size=32, learning_rate=3e-3)
        observation = {"obs": observation_for(-0.5, 2)}
        ic_posterior = engine.posterior(model, observation, num_traces=200)
        prior_posterior = run_importance_sampling(model, observation, num_traces=200, rng=RandomState(1))
        ic_ess = ic_posterior.effective_sample_size() / len(ic_posterior)
        prior_ess = prior_posterior.effective_sample_size() / len(prior_posterior)
        assert ic_ess > prior_ess

    def test_ic_posterior_matches_rmh_reference(self, ic_setup):
        """The Figure 8 validation: IC and RMH agree on the posterior."""
        model, engine = ic_setup
        engine.train(model, num_traces=2500, minibatch_size=32, learning_rate=3e-3)
        observation = {"obs": observation_for(0.3, 0)}
        ic_posterior = engine.posterior(model, observation, num_traces=300)
        rmh = RandomWalkMetropolis(model, observation, burn_in=300)
        rmh_posterior = rmh.run(1500, rng=RandomState(2))
        assert ic_posterior.extract("mu").mean == pytest.approx(
            rmh_posterior.extract("mu").mean, abs=0.2
        )

    def test_posterior_requires_observe_key_for_multiple_observes(self, ic_setup):
        model, engine = ic_setup
        engine.train(model, num_traces=60, minibatch_size=20)
        with pytest.raises(ValueError):
            # Pretend two observes were conditioned but no key given and network has None key.
            engine.network.observe_key = None
            engine.posterior(model, {"a": 0.0, "b": 1.0}, num_traces=5)


class TestPersistence:
    def test_save_and_load_engine(self, ic_setup, tmp_path):
        model, engine = ic_setup
        engine.train(model, num_traces=200, minibatch_size=20)
        path = os.path.join(tmp_path, "ic.pkl")
        engine.save(path)
        loaded = InferenceCompilation.load(path)
        assert loaded.network.num_parameters() == engine.network.num_parameters()
        observation = {"obs": observation_for(0.0, 0)}
        posterior = loaded.posterior(model, observation, num_traces=20, rng=RandomState(3))
        assert len(posterior) == 20
