"""Correctness tests for the IS and RMH/LMH inference engines and diagnostics."""

import numpy as np
import pytest

from repro import ppl
from repro.common.rng import RandomState
from repro.distributions import Categorical, Normal, Uniform
from repro.ppl.inference import (
    RandomWalkMetropolis,
    autocorrelation,
    effective_sample_size,
    gelman_rubin,
    integrated_autocorrelation_time,
    run_importance_sampling,
)
from tests.conftest import gaussian_posterior


class TestImportanceSampling:
    def test_recovers_conjugate_posterior(self, gaussian_model):
        y = 1.2
        posterior = run_importance_sampling(gaussian_model, {"obs": y}, num_traces=4000, rng=RandomState(0))
        mu = posterior.extract("mu")
        true_mean, true_std = gaussian_posterior(y)
        assert mu.mean == pytest.approx(true_mean, abs=0.08)
        assert mu.stddev == pytest.approx(true_std, abs=0.08)

    def test_log_evidence_matches_analytic_marginal(self, gaussian_model):
        # p(y) = N(y; 0, sqrt(prior_var + lik_var))
        y = 0.7
        posterior = run_importance_sampling(gaussian_model, {"obs": y}, num_traces=8000, rng=RandomState(1))
        expected = float(Normal(0.0, np.sqrt(1.25)).log_prob(y))
        assert posterior.log_evidence == pytest.approx(expected, abs=0.05)

    def test_prior_proposals_weight_by_likelihood(self, gaussian_model):
        posterior = run_importance_sampling(gaussian_model, {"obs": 0.0}, num_traces=50, rng=RandomState(2))
        for trace, log_w in zip(posterior.values, posterior.log_weights):
            assert log_w == pytest.approx(trace.log_likelihood)

    def test_custom_proposal_changes_weights_but_not_posterior(self, gaussian_model):
        y = 1.0
        true_mean, _ = gaussian_posterior(y)

        def provider(address, instance, prior, state):
            return Normal(true_mean, 0.6)

        posterior = run_importance_sampling(
            gaussian_model, {"obs": y}, num_traces=3000, proposal_provider=provider, rng=RandomState(3)
        )
        assert posterior.extract("mu").mean == pytest.approx(true_mean, abs=0.08)
        # With good proposals the ESS per sample should beat prior-IS.
        prior_posterior = run_importance_sampling(gaussian_model, {"obs": y}, num_traces=3000, rng=RandomState(4))
        assert posterior.effective_sample_size() > prior_posterior.effective_sample_size()

    def test_trace_callback_invoked(self, gaussian_model):
        seen = []
        run_importance_sampling(
            gaussian_model, {"obs": 0.0}, num_traces=7, trace_callback=lambda t, w: seen.append(w)
        )
        assert len(seen) == 7

    def test_invalid_num_traces(self, gaussian_model):
        with pytest.raises(ValueError):
            run_importance_sampling(gaussian_model, {"obs": 0.0}, num_traces=0)


class TestRandomWalkMetropolis:
    def test_recovers_conjugate_posterior_random_walk(self, gaussian_model):
        y = 1.2
        sampler = RandomWalkMetropolis(gaussian_model, {"obs": y}, kernel="random_walk", step_scale=0.4, burn_in=300)
        posterior = sampler.run(3000, rng=RandomState(0))
        mu = posterior.extract("mu")
        true_mean, true_std = gaussian_posterior(y)
        assert mu.mean == pytest.approx(true_mean, abs=0.1)
        assert mu.stddev == pytest.approx(true_std, abs=0.1)
        assert 0.05 < sampler.acceptance_rate < 0.99

    def test_recovers_conjugate_posterior_prior_kernel(self, gaussian_model):
        y = -0.8
        sampler = RandomWalkMetropolis(gaussian_model, {"obs": y}, kernel="prior", burn_in=300)
        posterior = sampler.run(3000, rng=RandomState(1))
        true_mean, true_std = gaussian_posterior(y)
        mu = posterior.extract("mu")
        assert mu.mean == pytest.approx(true_mean, abs=0.12)
        assert mu.stddev == pytest.approx(true_std, abs=0.12)

    def test_handles_mixed_discrete_continuous(self, mixed_model):
        y = np.array([0.5, 1.5, -0.5, 1.0])  # consistent with mu=0.5, k=1
        sampler = RandomWalkMetropolis(mixed_model, {"obs": y}, burn_in=200)
        posterior = sampler.run(1500, rng=RandomState(2))
        assert posterior.extract("mu").mean == pytest.approx(0.5, abs=0.2)
        k_probs = posterior.extract("k").categorical_probabilities()
        assert max(k_probs, key=k_probs.get) == 1

    def test_handles_variable_length_traces(self, rng):
        def loopy():
            total = 0.0
            count = 0
            while total < 1.0 and count < 20:
                total += ppl.sample(Uniform(0.0, 0.6), name="step")
                count += 1
            ppl.observe(Normal(total, 0.1), name="obs")
            return count

        model = ppl.FunctionModel(loopy)
        sampler = RandomWalkMetropolis(model, {"obs": 1.2}, burn_in=100)
        posterior = sampler.run(400, rng=rng)
        lengths = {t.length for t in posterior.values}
        assert len(lengths) >= 1  # chain moved across trace types without crashing
        assert sampler.num_executions > 400

    def test_thinning_and_burn_in_counts(self, gaussian_model, rng):
        sampler = RandomWalkMetropolis(gaussian_model, {"obs": 0.0}, burn_in=10, thin=3)
        posterior = sampler.run(20, rng=rng)
        assert len(posterior) == 20

    def test_initial_trace_can_be_provided(self, gaussian_model, rng):
        initial = gaussian_model.get_trace(observed_values={"obs": 0.0}, rng=rng)
        sampler = RandomWalkMetropolis(gaussian_model, {"obs": 0.0})
        posterior = sampler.run(10, rng=rng, initial_trace=initial)
        assert len(posterior) == 10

    def test_validation(self, gaussian_model):
        with pytest.raises(ValueError):
            RandomWalkMetropolis(gaussian_model, {}, kernel="bogus")
        with pytest.raises(ValueError):
            RandomWalkMetropolis(gaussian_model, {}, thin=0)
        with pytest.raises(ValueError):
            RandomWalkMetropolis(gaussian_model, {"obs": 0.0}).run(0)

    def test_rmh_matches_importance_sampling(self, gaussian_model):
        """The two engines must agree on the posterior (Figure 8's validation logic)."""
        y = 0.9
        is_post = run_importance_sampling(gaussian_model, {"obs": y}, num_traces=4000, rng=RandomState(5))
        rmh_post = RandomWalkMetropolis(gaussian_model, {"obs": y}, burn_in=300).run(3000, rng=RandomState(6))
        assert is_post.extract("mu").mean == pytest.approx(rmh_post.extract("mu").mean, abs=0.1)
        assert is_post.extract("mu").stddev == pytest.approx(rmh_post.extract("mu").stddev, abs=0.1)


class TestDiagnostics:
    def _ar1(self, phi, n=20000, seed=0):
        rng = np.random.default_rng(seed)
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + rng.standard_normal()
        return x

    def test_autocorrelation_of_ar1_matches_theory(self):
        phi = 0.8
        rho = autocorrelation(self._ar1(phi), max_lag=10)
        assert rho[0] == pytest.approx(1.0)
        assert rho[1] == pytest.approx(phi, abs=0.05)
        assert rho[5] == pytest.approx(phi**5, abs=0.07)

    def test_autocorrelation_of_iid_is_near_zero(self):
        rho = autocorrelation(np.random.default_rng(0).standard_normal(5000), max_lag=5)
        assert np.all(np.abs(rho[1:]) < 0.05)

    def test_constant_chain(self):
        rho = autocorrelation(np.ones(100), max_lag=3)
        assert np.allclose(rho, 1.0)

    def test_autocorrelation_requires_two_samples(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0])

    def test_integrated_autocorrelation_time_of_ar1(self):
        phi = 0.7
        tau = integrated_autocorrelation_time(self._ar1(phi))
        expected = (1 + phi) / (1 - phi)
        assert tau == pytest.approx(expected, rel=0.25)

    def test_effective_sample_size_ordering(self):
        iid = np.random.default_rng(1).standard_normal(5000)
        correlated = self._ar1(0.95, n=5000, seed=1)
        assert effective_sample_size(iid) > effective_sample_size(correlated)
        assert effective_sample_size(iid) <= 5000 * 1.2

    def test_fft_autocorrelation_matches_direct_estimator(self):
        # The FFT path is an exact O(n log n) rewrite of the O(n*max_lag)
        # direct loop (zero-padding makes the circular correlation linear),
        # so the two must agree to floating-point precision on real chains.
        for seed, phi in ((0, 0.8), (1, 0.2), (2, 0.99)):
            chain = self._ar1(phi, n=3000, seed=seed)
            direct = autocorrelation(chain, max_lag=200, method="direct")
            fft = autocorrelation(chain, max_lag=200, method="fft")
            assert np.allclose(fft, direct, atol=1e-10)

    def test_fft_autocorrelation_matches_direct_on_short_and_constant(self):
        short = np.array([0.3, -1.2, 0.7, 0.1, 2.0])
        assert np.allclose(
            autocorrelation(short, method="fft"),
            autocorrelation(short, method="direct"),
            atol=1e-12,
        )
        assert np.allclose(autocorrelation(np.ones(50), max_lag=4), 1.0)

    def test_autocorrelation_unknown_method(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(10), method="wavelet")

    def test_vectorized_ess_matches_per_chain(self):
        chains = np.stack([self._ar1(phi, n=2000, seed=s) for s, phi in enumerate((0.1, 0.6, 0.9))])
        batched = effective_sample_size(chains)
        assert batched.shape == (3,)
        for row, chain in zip(batched, chains):
            assert row == pytest.approx(effective_sample_size(chain), rel=1e-12)
        # Heavier correlation must monotonically cost effective samples.
        assert batched[0] > batched[1] > batched[2]

    def test_effective_sample_size_validation(self):
        with pytest.raises(ValueError):
            effective_sample_size(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            effective_sample_size(np.zeros((3, 1)))

    def test_gelman_rubin_converged_chains_near_one(self):
        rng = np.random.default_rng(0)
        chains = [rng.standard_normal(4000) for _ in range(4)]
        assert gelman_rubin(chains) == pytest.approx(1.0, abs=0.02)

    def test_gelman_rubin_detects_disagreement(self):
        rng = np.random.default_rng(0)
        chains = [rng.standard_normal(2000), rng.standard_normal(2000) + 5.0]
        assert gelman_rubin(chains) > 1.5

    def test_gelman_rubin_validation(self):
        with pytest.raises(ValueError):
            gelman_rubin([np.zeros(10)])
        with pytest.raises(ValueError):
            gelman_rubin([np.zeros(1), np.zeros(1)])

    def test_gelman_rubin_constant_chains(self):
        assert gelman_rubin([np.ones(10), np.ones(10)]) == pytest.approx(1.0)

    def test_rmh_chains_converge_by_gelman_rubin(self, gaussian_model):
        """Section 4.2's workflow: two independent chains, R-hat close to 1."""
        y = 1.0
        chains = []
        for seed in (10, 20):
            sampler = RandomWalkMetropolis(gaussian_model, {"obs": y}, burn_in=300)
            posterior = sampler.run(1500, rng=RandomState(seed))
            chains.append([t["mu"] for t in posterior.values])
        assert gelman_rubin(chains) < 1.2
