"""Tests for the PPX protocol: serialization, messages, addresses, transports."""

import queue
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions import Normal, Uniform
from repro.ppx import (
    AddressBuilder,
    Handshake,
    HandshakeResult,
    ObserveRequest,
    Run,
    RunResult,
    SampleRequest,
    SampleResult,
    ShutdownRequest,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
    make_queue_pair,
    message_from_dict,
)
from repro.ppx.transport import SocketTransport, connect_tcp, listen_tcp


class TestSerialization:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -12345,
            2**40,
            3.14159,
            -1e-300,
            "hello",
            "unicode ✓ τ",
            b"raw-bytes",
            [1, 2.5, "three", None],
            {"a": 1, "b": [True, {"c": "nested"}]},
        ],
    )
    def test_scalar_roundtrip(self, value):
        decoded, offset = decode_value(encode_value(value))
        assert decoded == value
        assert offset == len(encode_value(value))

    def test_numpy_array_roundtrip(self):
        for arr in (
            np.arange(12.0).reshape(3, 4),
            np.zeros((2, 3, 4), dtype=np.float32),
            np.array([1, 2, 3], dtype=np.int64),
            np.array(5.0),
        ):
            decoded, _ = decode_value(encode_value(arr))
            assert isinstance(decoded, np.ndarray)
            assert decoded.dtype == arr.dtype
            assert decoded.shape == arr.shape
            assert np.allclose(decoded, arr)

    def test_nested_structure_with_arrays(self):
        payload = {"obs": np.ones((2, 2)), "meta": {"n": 3, "tags": ["a", "b"]}}
        decoded, _ = decode_value(encode_value(payload))
        assert np.allclose(decoded["obs"], 1.0)
        assert decoded["meta"]["tags"] == ["a", "b"]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_non_string_dict_key_raises(self):
        with pytest.raises(TypeError):
            encode_value({1: "a"})

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError):
            decode_value(b"Zjunk")

    @settings(max_examples=60, deadline=None)
    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**62), max_value=2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        )
    )
    def test_property_roundtrip(self, value):
        decoded, _ = decode_value(encode_value(value))
        assert decoded == value


class TestMessages:
    def test_message_roundtrip_through_wire(self):
        message = SampleRequest(
            address="addr1", distribution=Uniform(0, 1).to_dict(), name="x", control=True, replace=False
        )
        decoded = decode_message(encode_message(message))
        assert isinstance(decoded, SampleRequest)
        assert decoded.address == "addr1"
        assert decoded.distribution["type"] == "Uniform"

    def test_all_message_kinds_roundtrip(self):
        messages = [
            Handshake(system_name="sherpa", model_name="tau"),
            HandshakeResult(accepted=True),
            Run(observation=[1.0, 2.0]),
            RunResult(result=3.0, success=True),
            SampleRequest(address="a", distribution=Normal(0, 1).to_dict()),
            SampleResult(value=0.5),
            ObserveRequest(address="b", distribution=Normal(0, 1).to_dict(), value=1.0),
            ShutdownRequest(),
        ]
        for message in messages:
            decoded = decode_message(encode_message(message))
            assert type(decoded) is type(message)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            message_from_dict({"kind": "NotAMessage"})

    def test_array_observation_roundtrip(self):
        message = Run(observation=np.ones((2, 3)))
        decoded = decode_message(encode_message(message))
        assert np.allclose(np.asarray(decoded.observation), 1.0)


class TestAddressBuilder:
    def test_deterministic_across_calls_from_same_site(self):
        builder = AddressBuilder()

        def call_site():
            return builder.build(skip_frames=1)

        assert call_site() == call_site()

    def test_different_sites_give_different_addresses(self):
        builder = AddressBuilder()

        def site_a():
            return builder.build(skip_frames=1)

        def site_b():
            return builder.build(skip_frames=1)

        assert site_a() != site_b()

    def test_explicit_address_short_circuits(self):
        builder = AddressBuilder()
        assert builder.build(explicit="my/address") == "my/address"

    def test_cache_hits_accumulate(self):
        builder = AddressBuilder(use_cache=True)

        def call_site():
            return builder.build(skip_frames=1)

        call_site()
        misses_after_first = builder.cache_misses
        for _ in range(5):
            call_site()
        assert builder.cache_hits > 0
        assert builder.cache_misses == misses_after_first

    def test_cache_disabled_never_hits(self):
        builder = AddressBuilder(use_cache=False)

        def call_site():
            return builder.build(skip_frames=1)

        for _ in range(3):
            call_site()
        assert builder.cache_hits == 0
        assert builder.cache_misses > 0

    def test_cache_gives_same_addresses_as_uncached(self):
        cached, uncached = AddressBuilder(use_cache=True), AddressBuilder(use_cache=False)

        def call_site(builder):
            return builder.build(skip_frames=1)

        assert call_site(cached) == call_site(uncached)

    def test_clear_cache(self):
        builder = AddressBuilder()

        def call_site():
            return builder.build(skip_frames=1)

        call_site()
        builder.clear_cache()
        assert builder.cache_hits == 0 and builder.cache_misses == 0


class TestTransports:
    def test_queue_pair_exchanges_messages(self):
        ppl_side, sim_side = make_queue_pair()
        ppl_side.send(Run(observation=1.0))
        received = sim_side.receive(timeout=1.0)
        assert isinstance(received, Run)
        sim_side.send(RunResult(result=2.0))
        reply = ppl_side.receive(timeout=1.0)
        assert isinstance(reply, RunResult) and reply.result == pytest.approx(2.0)
        assert ppl_side.bytes_sent > 0 and sim_side.bytes_received > 0

    def test_queue_timeout_raises(self):
        ppl_side, _ = make_queue_pair()
        with pytest.raises(queue.Empty):
            ppl_side.receive(timeout=0.01)

    def test_tcp_transport_roundtrip(self):
        server_socket, port = listen_tcp()
        results = {}

        def server_thread():
            connection, _ = server_socket.accept()
            transport = SocketTransport(connection)
            message = transport.receive()
            results["received"] = message
            transport.send(SampleResult(value=np.array([1.0, 2.0])))
            transport.close()

        thread = threading.Thread(target=server_thread)
        thread.start()
        client = connect_tcp("127.0.0.1", port)
        client.send(SampleRequest(address="site", distribution=Normal(0, 1).to_dict()))
        reply = client.receive(timeout=5.0)
        thread.join(timeout=5.0)
        server_socket.close()
        client.close()
        assert isinstance(results["received"], SampleRequest)
        assert isinstance(reply, SampleResult)
        assert np.allclose(np.asarray(reply.value), [1.0, 2.0])

    def test_socket_closed_by_peer_raises(self):
        server_socket, port = listen_tcp()

        def server_thread():
            connection, _ = server_socket.accept()
            connection.close()

        thread = threading.Thread(target=server_thread)
        thread.start()
        client = connect_tcp("127.0.0.1", port)
        thread.join(timeout=5.0)
        server_socket.close()
        with pytest.raises(ConnectionError):
            client.receive(timeout=2.0)
        client.close()


class TestControllerTimeouts:
    """A simulator that never responds must raise TimeoutError, not block."""

    def test_handshake_timeout_raises_clear_timeout_error(self):
        from repro.ppx.server import SimulatorController

        ppl_side, _sim_side = make_queue_pair()  # simulator never sends anything
        controller = SimulatorController(ppl_side)
        with pytest.raises(TimeoutError, match="Handshake"):
            controller.accept_handshake(timeout=0.05)

    def test_run_timeout_when_simulator_goes_silent_mid_run(self):
        from repro.ppx.server import SimulatorController

        ppl_side, sim_side = make_queue_pair()

        def silent_simulator():
            sim_side.send(Handshake(system_name="stuck-sim", model_name="stuck"))
            sim_side.receive(timeout=5.0)  # HandshakeResult
            sim_side.receive(timeout=5.0)  # consume Run, then never answer

        thread = threading.Thread(target=silent_simulator, daemon=True)
        thread.start()
        controller = SimulatorController(ppl_side)
        with pytest.raises(TimeoutError, match="waiting for the next message of its Run"):
            controller.run_trace(
                sample_policy=lambda address, dist, request: dist.sample(),
                timeout=0.2,
            )
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_remote_model_propagates_run_timeout(self):
        from repro.ppl.model import RemoteModel

        ppl_side, sim_side = make_queue_pair()

        def one_draw_then_silence():
            sim_side.send(Handshake(system_name="stuck-sim", model_name="stuck"))
            sim_side.receive(timeout=5.0)  # HandshakeResult
            sim_side.receive(timeout=5.0)  # Run
            sim_side.send(
                SampleRequest(
                    address="addr_a", distribution=Uniform(0.0, 1.0).to_dict(), control=True
                )
            )
            sim_side.receive(timeout=5.0)  # SampleResult answered by the controller
            # ... and then the simulator hangs forever.

        thread = threading.Thread(target=one_draw_then_silence, daemon=True)
        thread.start()
        remote = RemoteModel(ppl_side, run_timeout=0.2)
        with pytest.raises(TimeoutError, match="did not respond"):
            remote.get_trace()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
