"""Gradient-correctness tests for the autograd tensor library.

Every operation used by the IC network is checked against central finite
differences — the reproduction's equivalent of trusting PyTorch's autograd.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x, dtype=float)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        up = float(fn(Tensor(x)).sum().item())
        flat_x[i] = original - eps
        down = float(fn(Tensor(x)).sum().item())
        flat_x[i] = original
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def analytic_gradient(fn, x: np.ndarray) -> np.ndarray:
    tensor = Tensor(x.copy(), requires_grad=True)
    fn(tensor).sum().backward()
    return tensor.grad


def check(fn, x: np.ndarray, tol: float = 1e-5):
    analytic = analytic_gradient(fn, x.copy())
    numeric = numeric_gradient(fn, x.copy())
    scale = max(1e-8, float(np.max(np.abs(numeric))))
    assert np.max(np.abs(analytic - numeric)) / scale < tol


RNG = np.random.default_rng(0)


class TestElementwiseGradients:
    def test_add_mul(self):
        check(lambda t: t * 3.0 + t * t, RNG.standard_normal((3, 4)))

    def test_sub_div(self):
        check(lambda t: (t - 1.5) / (t * t + 2.0), RNG.standard_normal((3, 4)))

    def test_neg_pow(self):
        check(lambda t: (-t) ** 3, RNG.standard_normal((4,)) + 2.0)

    def test_exp_log(self):
        check(lambda t: (t.exp() + 1.0).log(), RNG.standard_normal((3, 3)))

    def test_sqrt(self):
        check(lambda t: t.sqrt(), RNG.random((3, 3)) + 0.5)

    def test_tanh_sigmoid(self):
        check(lambda t: t.tanh() * t.sigmoid(), RNG.standard_normal((5,)))

    def test_relu(self):
        x = RNG.standard_normal((10,))
        x[np.abs(x) < 1e-3] = 0.5  # keep away from the kink
        check(lambda t: t.relu() * 2.0, x)

    def test_abs(self):
        x = RNG.standard_normal((10,))
        x[np.abs(x) < 1e-3] = 0.7
        check(lambda t: t.abs(), x)

    def test_clamp(self):
        x = RNG.standard_normal((20,)) * 2
        x[np.abs(np.abs(x) - 1.0) < 1e-3] += 0.1
        check(lambda t: t.clamp(-1.0, 1.0) * t, x)

    def test_broadcasting_gradients(self):
        a = RNG.standard_normal((3, 1))
        b = RNG.standard_normal((1, 4))

        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape
        assert np.allclose(ta.grad, np.sum(b) * np.ones((3, 1)))
        assert np.allclose(tb.grad, np.sum(a) * np.ones((1, 4)))


class TestMatmulReductionGradients:
    def test_matmul(self):
        w = RNG.standard_normal((4, 5))
        check(lambda t: t @ Tensor(w), RNG.standard_normal((3, 4)))

    def test_matmul_left_grad(self):
        x = RNG.standard_normal((3, 4))
        check(lambda t: Tensor(x) @ t, RNG.standard_normal((4, 5)))

    def test_matvec(self):
        v = RNG.standard_normal((4,))
        check(lambda t: t @ Tensor(v), RNG.standard_normal((3, 4)))

    def test_sum_axis(self):
        check(lambda t: t.sum(axis=1) * 2.0, RNG.standard_normal((3, 4)))

    def test_mean(self):
        check(lambda t: t.mean(axis=0), RNG.standard_normal((3, 4)))

    def test_max(self):
        x = RNG.standard_normal((4, 5))
        check(lambda t: t.max(axis=1), x)

    def test_reshape_transpose(self):
        check(lambda t: (t.reshape(6, 2).T * 2.0), RNG.standard_normal((3, 4)))

    def test_getitem(self):
        check(lambda t: t[1:3] * 3.0, RNG.standard_normal((5, 2)))

    def test_cat(self):
        a = RNG.standard_normal((2, 3))
        check(lambda t: Tensor.cat([t, t * 2.0], axis=1), a)

    def test_stack(self):
        a = RNG.standard_normal((2, 3))
        check(lambda t: Tensor.stack([t, t * t], axis=0), a)

    def test_unsqueeze_squeeze(self):
        check(lambda t: t.unsqueeze(0).squeeze(0) * 2.0, RNG.standard_normal((3, 4)))


class TestFunctionalGradients:
    def test_softmax(self):
        weights = Tensor(RNG.standard_normal((3, 4)))
        check(lambda t: F.softmax(t, axis=-1) * weights, RNG.standard_normal((3, 4)))

    def test_log_softmax(self):
        check(lambda t: F.log_softmax(t, axis=-1), RNG.standard_normal((3, 4)))

    def test_logsumexp(self):
        check(lambda t: F.logsumexp(t, axis=-1), RNG.standard_normal((3, 4)))

    def test_softplus(self):
        check(lambda t: F.softplus(t), RNG.standard_normal((3, 4)))

    def test_erf(self):
        check(lambda t: F.erf(t), RNG.standard_normal((6,)))

    def test_normal_cdf(self):
        check(lambda t: F.normal_cdf(t), RNG.standard_normal((6,)))

    def test_gather(self):
        idx = np.array([0, 2, 1])
        check(lambda t: F.gather(t, idx, axis=-1), RNG.standard_normal((3, 4)))

    def test_embedding(self):
        idx = np.array([0, 2, 2, 1])
        check(lambda t: F.embedding(t, idx), RNG.standard_normal((4, 3)))

    def test_conv3d_input_gradient(self):
        w = RNG.standard_normal((2, 1, 3, 3, 3))
        check(lambda t: F.conv3d(t, Tensor(w)), RNG.standard_normal((1, 1, 5, 5, 5)))

    def test_conv3d_weight_gradient(self):
        x = RNG.standard_normal((2, 2, 4, 4, 4))
        check(lambda t: F.conv3d(Tensor(x), t), RNG.standard_normal((3, 2, 2, 2, 2)))

    def test_conv3d_bias_gradient(self):
        x = RNG.standard_normal((1, 1, 4, 4, 4))
        w = RNG.standard_normal((2, 1, 3, 3, 3))
        check(lambda t: F.conv3d(Tensor(x), Tensor(w), t), RNG.standard_normal((2,)))

    def test_conv3d_with_padding_and_stride(self):
        w = RNG.standard_normal((2, 1, 3, 3, 3))
        check(
            lambda t: F.conv3d(t, Tensor(w), stride=2, padding=1),
            RNG.standard_normal((1, 1, 5, 5, 5)),
        )

    def test_max_pool3d_gradient(self):
        x = RNG.standard_normal((1, 2, 4, 4, 4))
        check(lambda t: F.max_pool3d(t, 2), x)

    def test_normal_log_pdf_gradients_wrt_parameters(self):
        values = RNG.standard_normal((4, 1))

        def loss_fn(t):
            loc = t[:, 0:1]
            scale = F.softplus(t[:, 1:2]) + 0.1
            return F.normal_log_pdf(values, loc, scale)

        check(loss_fn, RNG.standard_normal((4, 2)))


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_grad_mode_is_thread_local(self):
        # Inference worker threads enter no_grad concurrently; a process-global
        # flag would race and could leave autograd disabled for everyone.
        import threading

        from repro.tensor import is_grad_enabled

        seen = {}
        with no_grad():
            worker = threading.Thread(target=lambda: seen.update(worker=is_grad_enabled()))
            worker.start()
            worker.join()
            assert is_grad_enabled() is False
        assert seen["worker"] is True
        assert is_grad_enabled() is True

    def test_gradient_accumulation_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).sum().backward()
        # d/dx (2x * (x+1)) = 4x + 2
        assert np.allclose(x.grad, [4 * 1.5 + 2.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * x).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        assert np.allclose(x.grad, 6.0)

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.backward()
        assert np.allclose(x.grad, [1.0])

    def test_clone_preserves_gradient_flow(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x.clone() * 2.0).backward()
        assert np.allclose(x.grad, [2.0])
