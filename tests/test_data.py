"""Tests for the data subsystem: shard store, datasets, sorting, batching, sampler."""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import RandomState
from repro.data import (
    DistributedTraceSampler,
    InMemoryTraceDataset,
    ShardStore,
    TraceDataset,
    dynamic_token_batches,
    effective_minibatch_size,
    generate_dataset,
    parallel_sort_indices,
    regroup_dataset,
    sorted_indices_by_trace_type,
    sortedness_fraction,
    split_into_sub_minibatches,
    sub_minibatch_count,
)


class TestShardStore:
    def test_append_and_read_back(self, tmp_path):
        store = ShardStore(str(tmp_path / "shards"), records_per_shard=3)
        ids = [store.append({"value": i}) for i in range(10)]
        assert ids == list(range(10))
        assert len(store) == 10
        assert store[7] == {"value": 7}
        assert store.get_many([0, 9]) == [{"value": 0}, {"value": 9}]

    def test_sharding_layout(self, tmp_path):
        store = ShardStore(str(tmp_path / "shards"), records_per_shard=4)
        store.extend({"value": i} for i in range(10))
        store.flush()
        files = [f for f in os.listdir(tmp_path / "shards") if f.startswith("shard_")]
        assert len(files) == 3  # 4 + 4 + 2
        assert store.shard_of(0) == 0 and store.shard_of(9) == 2

    def test_persistence_roundtrip(self, tmp_path):
        directory = str(tmp_path / "shards")
        store = ShardStore(directory, records_per_shard=5)
        store.extend({"value": i} for i in range(12))
        store.set_metadata("note", "hello")
        store.flush()
        reopened = ShardStore(directory)
        assert len(reopened) == 12
        assert reopened[11] == {"value": 11}
        assert reopened.get_metadata("note") == "hello"
        assert reopened.get_metadata("missing", 42) == 42

    def test_handle_cache_hits(self, tmp_path):
        store = ShardStore(str(tmp_path / "shards"), records_per_shard=2, cache_size=2)
        store.extend({"value": i} for i in range(8))
        store.flush()
        store.clear_cache()
        for i in range(8):          # sequential access: one miss per shard, rest hits
            _ = store[i]
        assert store.cache_misses == 4
        assert store.cache_hits == 4

    def test_cache_eviction(self, tmp_path):
        store = ShardStore(str(tmp_path / "shards"), records_per_shard=1, cache_size=2)
        store.extend({"value": i} for i in range(5))
        store.flush()
        store.clear_cache()
        for i in range(5):
            _ = store[i]
        _ = store[0]  # evicted by now -> miss
        assert store.cache_misses == 6

    def test_invalid_records_per_shard(self, tmp_path):
        with pytest.raises(ValueError):
            ShardStore(str(tmp_path / "x"), records_per_shard=0)

    def test_crash_during_index_write_keeps_previous_index(self, tmp_path, monkeypatch):
        # Regression: flush() used to write index.pkl in place, so a crash
        # mid-pickle corrupted the shard index and orphaned every shard file.
        # The atomic temp-file + os.replace path must leave the previous
        # index fully readable (and no torn .tmp file behind).
        directory = str(tmp_path / "shards")
        store = ShardStore(directory, records_per_shard=5)
        store.extend({"value": i} for i in range(7))
        store.flush()

        store.extend({"value": i} for i in range(7, 12))

        real_dump = pickle.dump

        def exploding_dump(obj, handle, *args, **kwargs):
            if isinstance(obj, dict) and "index" in obj:
                handle.write(b"torn!")  # partial bytes reach the target file
                raise OSError("simulated crash mid-flush")
            return real_dump(obj, handle, *args, **kwargs)

        monkeypatch.setattr("repro.data.shelf.pickle.dump", exploding_dump)
        with pytest.raises(OSError, match="simulated crash"):
            store.flush()
        monkeypatch.undo()

        assert not os.path.exists(os.path.join(directory, "index.pkl.tmp"))
        reopened = ShardStore(directory)
        assert len(reopened) == 7
        assert reopened[6] == {"value": 6}

    def test_flush_is_reloadable_after_interrupted_flush(self, tmp_path):
        # A later successful flush fully recovers: the replace is the only
        # publication point, so the index is either the old or the new one.
        directory = str(tmp_path / "shards")
        store = ShardStore(directory, records_per_shard=4)
        store.extend({"value": i} for i in range(9))
        store.flush()
        store.extend({"value": i} for i in range(9, 14))
        store.flush()
        reopened = ShardStore(directory)
        assert len(reopened) == 14
        assert reopened[13] == {"value": 13}


class TestTraceDataset:
    def test_roundtrip_on_disk(self, tau_model, rng, tmp_path):
        directory = str(tmp_path / "dataset")
        dataset = generate_dataset(tau_model, 20, directory=directory, records_per_shard=8, rng=rng)
        assert isinstance(dataset, TraceDataset)
        assert len(dataset) == 20
        reopened = TraceDataset(directory)
        assert len(reopened) == 20
        trace = reopened[3]
        assert trace.length == reopened.trace_length_of(3)
        assert trace.trace_type == reopened.trace_type_of(3)
        assert "detector" in trace.observation or trace.observation is not None

    def test_in_memory_dataset(self, tau_model, rng):
        dataset = generate_dataset(tau_model, 15, rng=rng)
        assert isinstance(dataset, InMemoryTraceDataset)
        assert len(dataset) == 15
        assert dataset.num_trace_types() >= 1
        assert dataset.get_batch([0, 1])[0] is dataset[0]
        assert len(list(iter(dataset))) == 15

    def test_metadata_matches_traces(self, tiny_tau_dataset):
        for index in range(0, len(tiny_tau_dataset), 7):
            trace = tiny_tau_dataset[index]
            assert trace.length == tiny_tau_dataset.trace_length_of(index)
            assert trace.trace_type == tiny_tau_dataset.trace_type_of(index)

    def test_disk_dataset_restores_prior_log_probs(self, tau_model, rng, tmp_path):
        dataset = generate_dataset(tau_model, 5, directory=str(tmp_path / "d"), rng=rng)
        trace = dataset[0]
        assert np.isfinite(trace.log_prior)
        assert trace.log_prior != 0.0


class TestSorting:
    def test_sorted_indices_group_trace_types(self, tiny_tau_dataset):
        order = sorted_indices_by_trace_type(tiny_tau_dataset)
        assert sorted(order) == list(range(len(tiny_tau_dataset)))
        types_in_order = [tiny_tau_dataset.trace_type_of(i) for i in order]
        # sorted order => identical types are contiguous
        changes = sum(1 for a, b in zip(types_in_order, types_in_order[1:]) if a != b)
        assert changes == tiny_tau_dataset.num_trace_types() - 1

    def test_parallel_sort_matches_serial(self, tiny_tau_dataset):
        serial = sorted_indices_by_trace_type(tiny_tau_dataset)
        for workers in (1, 3, 8):
            assert parallel_sort_indices(tiny_tau_dataset, num_workers=workers) == serial

    def test_parallel_sort_validation(self, tiny_tau_dataset):
        with pytest.raises(ValueError):
            parallel_sort_indices(tiny_tau_dataset, num_workers=0)
        assert parallel_sort_indices(InMemoryTraceDataset([])) == []

    def test_sortedness_fraction_improves_after_sorting(self, tiny_tau_dataset):
        chunk = 8
        unsorted_types = [tiny_tau_dataset.trace_type_of(i) for i in range(len(tiny_tau_dataset))]
        sorted_types = [
            tiny_tau_dataset.trace_type_of(i) for i in sorted_indices_by_trace_type(tiny_tau_dataset)
        ]
        assert sortedness_fraction(sorted_types, chunk) >= sortedness_fraction(unsorted_types, chunk)

    def test_sortedness_fraction_validation(self):
        with pytest.raises(ValueError):
            sortedness_fraction(["a"], 0)
        assert sortedness_fraction([], 4) == 0.0

    def test_regroup_dataset_writes_sorted_copy(self, tau_model, rng, tmp_path):
        source = generate_dataset(tau_model, 12, rng=rng)
        regrouped = regroup_dataset(source, str(tmp_path / "sorted"), records_per_shard=6)
        assert len(regrouped) == 12
        types = [regrouped.trace_type_of(i) for i in range(len(regrouped))]
        changes = sum(1 for a, b in zip(types, types[1:]) if a != b)
        assert changes == len(set(types)) - 1


class TestBatching:
    def test_split_into_sub_minibatches(self, tiny_tau_dataset):
        traces = tiny_tau_dataset.get_batch(range(20))
        groups = split_into_sub_minibatches(traces)
        assert sum(len(g) for g in groups) == 20
        for group in groups:
            assert len({t.trace_type for t in group}) == 1

    def test_effective_minibatch_size(self):
        assert effective_minibatch_size(["a"] * 8) == pytest.approx(8.0)
        assert effective_minibatch_size(["a", "b", "a", "b"]) == pytest.approx(2.0)
        assert effective_minibatch_size([]) == 0.0
        assert sub_minibatch_count(["a", "b", "b"]) == 2

    def test_dynamic_token_batches_respect_budget(self):
        lengths = [5, 5, 5, 20, 3, 3, 3, 3]
        batches = dynamic_token_batches(lengths, tokens_per_batch=12)
        assert sorted(i for batch in batches for i in batch) == list(range(len(lengths)))
        for batch in batches:
            if len(batch) > 1:
                assert sum(lengths[i] for i in batch) <= 12

    def test_dynamic_token_batches_single_long_trace(self):
        batches = dynamic_token_batches([100], tokens_per_batch=10)
        assert batches == [[0]]

    def test_dynamic_token_batches_validation(self):
        with pytest.raises(ValueError):
            dynamic_token_batches([1, 2], tokens_per_batch=0)

    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=60),
        budget=st.integers(min_value=1, max_value=100),
    )
    def test_dynamic_token_batches_partition_property(self, lengths, budget):
        batches = dynamic_token_batches(lengths, tokens_per_batch=budget)
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(len(lengths)))
        for batch in batches:
            assert len(batch) >= 1


class TestDistributedSampler:
    def _sampler(self, dataset, rank, num_ranks=2, **kwargs):
        order = sorted_indices_by_trace_type(dataset)
        lengths = [dataset.trace_length_of(i) for i in range(len(dataset))]
        return DistributedTraceSampler(
            order, minibatch_size=8, num_ranks=num_ranks, rank=rank, lengths=lengths, **kwargs
        )

    def test_ranks_partition_chunks(self, tiny_tau_dataset):
        samplers = [self._sampler(tiny_tau_dataset, rank) for rank in range(2)]
        seen = [set(i for chunk in s._rank_chunks for i in chunk) for s in samplers]
        assert seen[0].isdisjoint(seen[1])
        total_chunks = len(samplers[0]) + len(samplers[1])
        assert total_chunks == len(tiny_tau_dataset) // 8

    def test_minibatch_sizes_fixed(self, tiny_tau_dataset):
        sampler = self._sampler(tiny_tau_dataset, 0)
        for minibatch in sampler:
            assert len(minibatch) == 8

    def test_epoch_shuffling_changes_order_but_not_content(self, tiny_tau_dataset):
        sampler = self._sampler(tiny_tau_dataset, 0)
        first = list(sampler)
        sampler.set_epoch(1)
        second = list(sampler)
        assert sorted(map(tuple, first)) == sorted(map(tuple, second))
        if len(first) > 1:
            assert first != second or len(first) == 1

    def test_same_seed_same_order(self, tiny_tau_dataset):
        a = list(self._sampler(tiny_tau_dataset, 0, seed=3))
        b = list(self._sampler(tiny_tau_dataset, 0, seed=3))
        assert a == b

    def test_bucketing_groups_by_length(self, tiny_tau_dataset):
        sampler = self._sampler(tiny_tau_dataset, 0, num_buckets=3)
        assert len(sampler) >= 1
        assert sampler.workload_tokens() > 0

    def test_sorted_chunks_have_fewer_types_than_unsorted(self, tiny_tau_dataset):
        def mean_types_per_chunk(order):
            lengths = [tiny_tau_dataset.trace_length_of(i) for i in range(len(tiny_tau_dataset))]
            sampler = DistributedTraceSampler(order, minibatch_size=8, num_ranks=1, rank=0, lengths=lengths, shuffle=False)
            counts = [
                len({tiny_tau_dataset.trace_type_of(i) for i in minibatch}) for minibatch in sampler
            ]
            return float(np.mean(counts))

        sorted_order = sorted_indices_by_trace_type(tiny_tau_dataset)
        unsorted_order = list(range(len(tiny_tau_dataset)))
        assert mean_types_per_chunk(sorted_order) <= mean_types_per_chunk(unsorted_order)

    def test_validation(self, tiny_tau_dataset):
        order = list(range(len(tiny_tau_dataset)))
        with pytest.raises(ValueError):
            DistributedTraceSampler(order, minibatch_size=0)
        with pytest.raises(ValueError):
            DistributedTraceSampler(order, minibatch_size=4, num_ranks=2, rank=5)
        with pytest.raises(ValueError):
            DistributedTraceSampler(order, minibatch_size=4, num_buckets=0)

    def test_iterations_per_epoch(self, tiny_tau_dataset):
        sampler = self._sampler(tiny_tau_dataset, 0)
        assert sampler.iterations_per_epoch() == len(sampler)
