"""Tests of the process-based cohort execution backend.

The acceptance contract of ``backend="process"``: seeded posteriors are
bit-identical to the thread backend and to a direct engine call (randomness
is derived in the parent, so *where* a shard runs can never change what it
draws); a worker-process crash requeues the shard (or fails it loudly) —
never drops it silently; and the pool/service shut down cleanly with every
submitted future resolved.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.distributed.inference import distributed_importance_sampling
from repro.ppl import FunctionModel
from repro.ppl.inference.batched import TraceJob, per_trace_rngs
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.ppl.nn.embeddings import ObservationEmbeddingFC
from repro.serving import (
    PosteriorService,
    ProcessCohortPool,
    ServiceOverloaded,
    ServingError,
    WorkerCrashed,
)
from repro.serving.procpool import _picklable_error
from tests.test_batched_inference import OBSERVATION, lockstep_program


def slow_program():
    """A trace whose body sleeps, so tests can catch a worker mid-shard."""
    import repro.ppl as ppl
    from repro.distributions import Normal, Uniform

    a = ppl.sample(Uniform(-1.0, 1.0), name="a", address="slow_a")
    time.sleep(0.25)
    ppl.observe(Normal(a, 0.5), name="obs")
    return a


SLOW_OBSERVATION = {"obs": np.array(0.3)}


@pytest.fixture(scope="module")
def served_engine():
    model = FunctionModel(lockstep_program, name="lockstep")
    engine = InferenceCompilation(
        observation_embedding=ObservationEmbeddingFC(input_dim=4, embedding_dim=16),
        observe_key="obs",
        rng=RandomState(0),
    )
    engine.train(model, num_traces=400, minibatch_size=20, learning_rate=3e-3)
    return model, engine


def make_service(model, engine, **kwargs):
    defaults = dict(observe_key="obs", max_batch=32, max_latency=0.01, num_workers=2)
    defaults.update(kwargs)
    network = engine.network if engine is not None else None
    return PosteriorService(model, network, **defaults)


class TestCrossBackendEquivalence:
    def test_process_thread_and_direct_posteriors_identical(self, served_engine):
        model, engine = served_engine
        seeds = (7, 11)
        results = {}
        for backend in ("thread", "process"):
            with make_service(model, engine, backend=backend) as service:
                futures = {
                    seed: service.submit(OBSERVATION, num_traces=16, seed=seed, use_cache=False)
                    for seed in seeds
                }
                results[backend] = {
                    seed: future.result(timeout=120) for seed, future in futures.items()
                }
                assert service.stats()["backend"] == backend
        for seed in seeds:
            direct = engine.posterior(
                model, OBSERVATION, num_traces=16, rng=RandomState(seed)
            )
            for latent in ("a", "b", "c"):
                direct_mean = direct.extract(latent).mean
                for backend in ("thread", "process"):
                    served = results[backend][seed].posterior.extract(latent).mean
                    assert served == pytest.approx(direct_mean, abs=1e-12)
            for backend in ("thread", "process"):
                assert results[backend][seed].posterior.log_evidence == pytest.approx(
                    direct.log_evidence, abs=1e-12
                )

    def test_distributed_driver_backends_identical(self):
        model = FunctionModel(lockstep_program, name="lockstep")
        posteriors = {
            backend: distributed_importance_sampling(
                model,
                OBSERVATION,
                num_traces=48,
                num_ranks=3,
                rng=RandomState(5),
                backend=backend,
                num_workers=2 if backend == "process" else None,
            )
            for backend in ("sequential", "thread", "process")
        }
        reference = posteriors["sequential"]
        for backend in ("thread", "process"):
            assert posteriors[backend].log_evidence == reference.log_evidence
            for latent in ("a", "b", "c"):
                assert (
                    posteriors[backend].extract(latent).mean
                    == reference.extract(latent).mean
                )

    def test_trace_jobs_pickle_with_stream_state_intact(self):
        rng = RandomState(17)
        trace_rngs = per_trace_rngs(rng, 4)
        jobs = [
            TraceJob(0, OBSERVATION, np.asarray(OBSERVATION["obs"], dtype=float), trace_rng)
            for trace_rng in trace_rngs
        ]
        clones = pickle.loads(pickle.dumps(jobs))
        for job, clone in zip(jobs, clones):
            assert np.array_equal(job.observation["obs"], clone.observation["obs"])
            # The pickled stream must continue exactly where the original
            # would: same next draws.
            assert clone.rng.generator.random() == job.rng.generator.random()
            assert clone.rng.generator.normal() == job.rng.generator.normal()


class TestWorkerCrash:
    def _submit_slow_shard(self, pool, num_jobs=2):
        model_rng = RandomState(1)
        jobs = [
            TraceJob(0, SLOW_OBSERVATION, None, trace_rng)
            for trace_rng in per_trace_rngs(model_rng, num_jobs)
        ]
        outcome = {}

        def on_done(_entries, traces, error):
            outcome["traces"] = traces
            outcome["error"] = error

        pool.submit(jobs, on_done)
        return outcome

    def _busy_worker(self, pool, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for worker in pool._workers:
                if worker.outstanding and worker.process.is_alive():
                    return worker
            time.sleep(0.01)
        raise AssertionError("no worker picked up the shard")

    def _wait_for_outcome(self, outcome, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and not outcome:
            time.sleep(0.02)
        assert outcome, "shard neither completed nor failed"

    def test_killed_worker_shard_is_requeued(self):
        model = FunctionModel(slow_program, name="slow")
        pool = ProcessCohortPool(
            model, None, num_workers=2, max_requeues=2, health_interval=0.02
        )
        pool.start()
        try:
            outcome = self._submit_slow_shard(pool)
            worker = self._busy_worker(pool)
            os.kill(worker.process.pid, signal.SIGKILL)
            self._wait_for_outcome(outcome)
            assert outcome["error"] is None
            assert len(outcome["traces"]) == 2
            stats = pool.stats()
            assert stats["requeues"] >= 1
            assert stats["worker_crashes"] >= 1
            assert stats["shards_executed"] == 1
        finally:
            pool.stop(drain=False)

    def test_requeue_budget_exhaustion_fails_loudly(self):
        model = FunctionModel(slow_program, name="slow")
        pool = ProcessCohortPool(
            model, None, num_workers=1, max_requeues=0, health_interval=0.02
        )
        pool.start()
        try:
            outcome = self._submit_slow_shard(pool)
            worker = self._busy_worker(pool)
            os.kill(worker.process.pid, signal.SIGKILL)
            self._wait_for_outcome(outcome)
            assert isinstance(outcome["error"], WorkerCrashed)
            assert pool.stats()["failed_shards"] == 1
        finally:
            pool.stop(drain=False)

    def test_service_surfaces_worker_crash_after_budget(self):
        model = FunctionModel(slow_program, name="slow")
        service = PosteriorService(
            model, None, num_workers=1, backend="process", max_requeues=0,
            max_latency=0.001,
        ).start()
        try:
            service.workers.health_interval = 0.02
            future = service.submit(SLOW_OBSERVATION, num_traces=2, seed=3, use_cache=False)
            deadline = time.monotonic() + 5.0
            victim = None
            while time.monotonic() < deadline and victim is None:
                for worker in service.workers._workers:
                    if worker.outstanding and worker.process.is_alive():
                        victim = worker
                time.sleep(0.01)
            assert victim is not None
            os.kill(victim.process.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed):
                future.result(timeout=30)
        finally:
            service.stop(drain=False)


class TestProcessLifecycle:
    def test_pool_context_manager_and_double_stop(self):
        model = FunctionModel(lockstep_program, name="lockstep")
        with ProcessCohortPool(model, None, num_workers=1) as pool:
            rngs = per_trace_rngs(RandomState(2), 3)
            outcome = {}

            def on_done(_entries, traces, error):
                outcome["traces"], outcome["error"] = traces, error

            pool.submit([TraceJob(0, OBSERVATION, None, rng) for rng in rngs], on_done)
            pool.stop(drain=True)  # idempotent with the context exit
            assert outcome["error"] is None
            assert len(outcome["traces"]) == 3
        pool.stop()  # after-close stop is a no-op
        with pytest.raises(RuntimeError):
            pool.submit([], lambda *args: None)

    def test_stop_without_drain_fails_pending_futures(self):
        model = FunctionModel(slow_program, name="slow")
        service = PosteriorService(
            model, None, num_workers=1, backend="process", max_latency=0.5
        ).start()
        # Still queued in the scheduler when the service stops: the future
        # must resolve with a ServingError, not hang forever.
        future = service.submit(SLOW_OBSERVATION, num_traces=2, use_cache=False)
        service.stop(drain=False)
        with pytest.raises(ServingError):
            future.result(timeout=10)

    def test_drain_completes_inflight_process_requests(self, served_engine):
        model, engine = served_engine
        service = make_service(model, engine, backend="process", max_latency=0.2).start()
        future = service.submit(OBSERVATION, num_traces=8, seed=2, use_cache=False)
        service.shutdown(drain=True)
        assert future.result(timeout=10).num_traces == 8

    def test_remote_models_force_thread_backend(self):
        from repro.ppl.model import RemoteModel
        from repro.ppx.transport import make_queue_pair

        ppl_side, _sim_side = make_queue_pair()
        service = PosteriorService(RemoteModel(ppl_side), None, backend="process")
        assert service.backend == "thread"
        assert service.workers.num_workers == 1

    def test_unknown_backend_rejected(self):
        model = FunctionModel(lockstep_program, name="lockstep")
        with pytest.raises(ValueError):
            PosteriorService(model, None, backend="mpi")


class TestErrorTransport:
    def test_unpicklable_errors_are_wrapped(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        wrapped = _picklable_error(Unpicklable("boom"))
        assert isinstance(wrapped, ServingError)
        assert "Unpicklable" in str(wrapped)
        passthrough = _picklable_error(ValueError("fine"))
        assert isinstance(passthrough, ValueError)

    def test_model_exception_reaches_the_client(self):
        def broken_program():
            raise RuntimeError("simulator exploded")

        model = FunctionModel(broken_program, name="broken")
        with PosteriorService(
            model, None, num_workers=1, backend="process", max_latency=0.001
        ) as service:
            future = service.submit({"obs": 1.0}, num_traces=2, use_cache=False)
            with pytest.raises(RuntimeError, match="simulator exploded"):
                future.result(timeout=30)


def gen1_program():
    import repro.ppl as ppl
    from repro.distributions import Normal, Uniform

    a = ppl.sample(Uniform(-1.0, 1.0), name="a", address="gen1_a")
    ppl.observe(Normal(a, 0.5), name="obs")
    return a


def gen2_program():
    import repro.ppl as ppl
    from repro.distributions import Normal, Uniform

    a = ppl.sample(Uniform(-1.0, 1.0), name="a", address="gen2_a")
    ppl.observe(Normal(a, 0.5), name="obs")
    return a


class TestWorkerRefresh:
    def _run_one_shard(self, pool, num_jobs=2):
        jobs = [
            TraceJob(0, SLOW_OBSERVATION, None, trace_rng)
            for trace_rng in per_trace_rngs(RandomState(4), num_jobs)
        ]
        outcome = {}

        def on_done(_entries, traces, error):
            outcome["traces"], outcome["error"] = traces, error

        pool.submit(jobs, on_done)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not outcome:
            time.sleep(0.01)
        assert outcome and outcome["error"] is None
        return outcome["traces"]

    def test_refresh_rolls_workers_onto_new_model_state(self):
        pool = ProcessCohortPool(FunctionModel(gen1_program, name="gen"), None, num_workers=1)
        pool.start()
        try:
            traces = self._run_one_shard(pool)
            assert traces[0].addresses == ("gen1_a",)
            # The parent swaps in new model state (the in-place-retraining
            # shape); fresh workers must serve it.
            pool.refresh(model=FunctionModel(gen2_program, name="gen"))
            traces = self._run_one_shard(pool)
            assert traces[0].addresses == ("gen2_a",)
        finally:
            pool.stop(drain=False)

    def test_service_process_backend_follows_retraining(self, served_engine):
        model, engine = served_engine
        with make_service(model, engine, backend="process") as service:
            service.posterior(OBSERVATION, num_traces=4, timeout=60)
            generation_before = [worker.process.pid for worker in service.workers._workers]
            engine.network.notify_updated()
            # The listener rolled the worker generation: new processes.
            generation_after = [worker.process.pid for worker in service.workers._workers]
            assert set(generation_before).isdisjoint(generation_after)
            # And the rolled pool still serves correctly.
            assert service.posterior(OBSERVATION, num_traces=4, timeout=60).num_traces == 4

    def test_pool_restarts_after_stop(self):
        pool = ProcessCohortPool(FunctionModel(gen1_program, name="gen"), None, num_workers=1)
        pool.start()
        self._run_one_shard(pool)
        pool.stop(drain=True)
        pool.start()  # a stopped pool is restartable, like the thread pool
        try:
            traces = self._run_one_shard(pool)
            assert len(traces) == 2
        finally:
            pool.stop(drain=True)
