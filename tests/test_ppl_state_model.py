"""Tests for the PPL execution state, controllers and local models."""

import numpy as np
import pytest

from repro import ppl
from repro.common.rng import RandomState
from repro.distributions import Categorical, Normal, Uniform
from repro.ppl.state import (
    ExecutionState,
    PriorController,
    ProposalController,
    ReplayController,
    current_state,
)


class TestSampleObserveOutsideContext:
    def test_sample_outside_context_draws_from_prior(self):
        value = ppl.sample(Uniform(0.0, 1.0))
        assert 0.0 <= value <= 1.0
        assert current_state() is None

    def test_observe_outside_context_returns_value(self):
        assert ppl.observe(Normal(0.0, 1.0), value=2.5) == pytest.approx(2.5)

    def test_observe_outside_context_samples_when_no_value(self):
        assert np.isfinite(ppl.observe(Normal(0.0, 1.0)))


class TestPriorController:
    def test_prior_trace_records_everything(self, gaussian_model):
        trace = gaussian_model.prior_trace()
        assert trace.length == 1
        assert len(trace.observes) == 1
        assert trace.samples[0].name == "mu"
        assert trace.samples[0].controlled
        assert not trace.observes[0].controlled
        assert "obs" in trace.observation
        assert np.isfinite(trace.log_joint)
        assert trace.result == pytest.approx(trace["mu"])

    def test_prior_traces_are_random(self, gaussian_model, rng):
        traces = gaussian_model.prior_traces(10, rng=rng)
        values = [t["mu"] for t in traces]
        assert len(set(np.round(values, 8))) > 1

    def test_same_rng_gives_same_trace(self, gaussian_model):
        a = gaussian_model.prior_trace(RandomState(5))
        b = gaussian_model.prior_trace(RandomState(5))
        assert a["mu"] == pytest.approx(b["mu"])

    def test_log_q_equals_log_prior_for_prior_sampling(self, gaussian_model):
        trace = gaussian_model.prior_trace()
        assert trace.log_q == pytest.approx(trace.log_prior)


class TestObservationConditioning:
    def test_observed_value_is_scored(self, gaussian_model):
        trace = gaussian_model.get_trace(observed_values={"obs": 3.0})
        assert trace.observes[0].value == pytest.approx(3.0)
        expected = float(Normal(trace["mu"], 0.5).log_prob(3.0))
        assert trace.log_likelihood == pytest.approx(expected)

    def test_unconditioned_observe_simulates_value(self, gaussian_model):
        trace = gaussian_model.prior_trace()
        # the simulated observation should vary around mu
        assert np.isfinite(trace.observation["obs"])


class TestReplayController:
    def test_replay_reuses_values(self, mixed_model, rng):
        base = mixed_model.prior_trace(rng)
        base_values = {(s.address, s.instance): s.value for s in base.samples}
        controller = ReplayController(base_values)
        replayed = mixed_model.get_trace(controller, rng=rng)
        assert replayed["mu"] == pytest.approx(base["mu"])
        assert replayed["k"] == base["k"]
        assert len(controller.fresh_keys) == 0

    def test_replay_with_resample_site_changes_one_value(self, mixed_model, rng):
        base = mixed_model.prior_trace(rng)
        mu_sample = next(s for s in base.samples if s.name == "mu")
        base_values = {(s.address, s.instance): s.value for s in base.samples}
        controller = ReplayController(
            base_values, resample_key=(mu_sample.address, 0), resample_value=1.234
        )
        replayed = mixed_model.get_trace(controller, rng=rng)
        assert replayed["mu"] == pytest.approx(1.234)
        assert replayed["k"] == base["k"]

    def test_replay_draws_fresh_for_unknown_addresses(self, mixed_model, rng):
        controller = ReplayController(base_values={})
        trace = mixed_model.get_trace(controller, rng=rng)
        assert len(controller.fresh_keys) == trace.length
        assert controller.fresh_log_prob == pytest.approx(trace.log_prior)


class TestProposalController:
    def test_proposals_are_used_and_logged(self, gaussian_model, rng):
        proposal = Normal(2.0, 0.1)

        def provider(address, instance, prior, state):
            return proposal

        controller = ProposalController(provider)
        trace = gaussian_model.get_trace(controller, observed_values={"obs": 2.0}, rng=rng)
        assert abs(trace["mu"] - 2.0) < 1.0  # drawn from the narrow proposal
        assert controller.num_proposed == 1
        assert controller.log_q == pytest.approx(float(proposal.log_prob(trace["mu"])))
        assert controller.log_prior == pytest.approx(trace.log_prior)

    def test_none_proposal_falls_back_to_prior(self, gaussian_model, rng):
        controller = ProposalController(lambda *args: None)
        trace = gaussian_model.get_trace(controller, rng=rng)
        assert controller.num_proposed == 0
        assert controller.log_q == pytest.approx(trace.log_prior)

    def test_controller_receives_execution_state(self, gaussian_model, rng):
        seen_states = []

        def provider(address, instance, prior, state):
            seen_states.append(state)
            return None

        gaussian_model.get_trace(ProposalController(provider), rng=rng)
        assert len(seen_states) == 1
        assert isinstance(seen_states[0], ExecutionState)


class TestModelAPI:
    def test_function_model_name_defaults_to_function_name(self):
        model = ppl.FunctionModel(lambda: ppl.sample(Uniform(0, 1)), name=None)
        assert model.name == "<lambda>"

    def test_function_model_with_arguments(self):
        def program(scale):
            return ppl.sample(Normal(0.0, scale), name="x")

        model = ppl.FunctionModel(program, args=(3.0,))
        trace = model.prior_trace()
        assert trace.samples[0].distribution.scale == pytest.approx(3.0)

    def test_model_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            ppl.Model().forward()

    def test_posterior_dispatcher_rejects_unknown_engine(self, gaussian_model):
        with pytest.raises(ValueError):
            gaussian_model.posterior({"obs": 0.0}, num_traces=10, engine="bogus")

    def test_posterior_dispatcher_accepts_aliases(self, gaussian_model, rng):
        for engine in ("rmh", "lmh", "random_walk_metropolis", "lightweight_metropolis_hastings"):
            posterior = gaussian_model.posterior({"obs": 0.5}, num_traces=20, engine=engine, rng=rng)
            assert len(posterior) == 20

    def test_addresses_are_stable_across_executions(self, mixed_model, rng):
        a = mixed_model.prior_trace(rng)
        b = mixed_model.prior_trace(rng)
        assert a.addresses == b.addresses

    def test_different_sites_have_different_addresses(self, mixed_model, rng):
        trace = mixed_model.prior_trace(rng)
        assert len(set(trace.addresses)) == trace.length
