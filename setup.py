"""Setup shim so that editable installs work without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to the legacy ``setup.py develop``
path in offline environments where PEP 660 editable builds are unavailable.
"""

from setuptools import setup

setup()
