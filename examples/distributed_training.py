"""Offline dataset generation + synchronous data-parallel IC training (Algorithm 2).

Reproduces the paper's training pipeline end to end at laptop scale:

1. generate an offline dataset of execution traces from the mini-Sherpa
   simulator and store it in sorted, grouped shard files (Section 4.4.3),
2. pre-generate every address-specific layer of the inference network from the
   dataset and freeze the architecture (Section 4.4),
3. train with synchronous data-parallel SGD across simulated MPI ranks using
   sparse + fused gradient allreduce, Adam-LARC and polynomial LR decay
   (Sections 4.4.4 and 6.3),
4. report throughput, load imbalance and the projected scaling on Cori /
   Edison from the calibrated performance model (Figures 4 and 6).

Run with::

    python examples/distributed_training.py
"""

import os
import tempfile

import numpy as np

from repro import seed_all
from repro.common.config import Config
from repro.common.rng import RandomState
from repro.data import generate_dataset, regroup_dataset, sorted_indices_by_trace_type
from repro.distributed import CORI, EDISON, ClusterPerformanceModel, DistributedTrainer, SingleNodeModel
from repro.ppl.nn import InferenceNetwork, collect_address_statistics
from repro.simulators import TauDecayModel


def main() -> None:
    seed_all(7)
    rng = RandomState(7)
    model = TauDecayModel()

    # ---- 1. offline dataset ---------------------------------------------------------
    num_traces = 400
    print(f"generating an offline dataset of {num_traces} traces ...")
    with tempfile.TemporaryDirectory() as workdir:
        raw_dir = os.path.join(workdir, "raw")
        sorted_dir = os.path.join(workdir, "sorted")
        dataset = generate_dataset(model, num_traces, directory=raw_dir, records_per_shard=20, rng=rng)
        stats = collect_address_statistics(dataset)
        print(f"  {stats['num_traces']} traces, {stats['num_unique_addresses']} unique addresses, "
              f"{stats['num_trace_types']} trace types, lengths {stats['min_length']}-{stats['max_length']}")

        print("sorting by trace type and regrouping into larger shard files ...")
        order = sorted_indices_by_trace_type(dataset)
        dataset = regroup_dataset(dataset, sorted_dir, records_per_shard=50, order=order)
        print(f"  {dataset.store.num_shards} shard files of up to 50 traces")

        # ---- 2-3. network + distributed training -------------------------------------
        config = Config(
            observation_shape=model.observation_shape,
            lstm_hidden=32, observation_embedding_dim=16, address_embedding_dim=8,
            sample_embedding_dim=4, proposal_mixture_components=3,
        )
        network = InferenceNetwork(config=config, observe_key="detector", rng=rng)
        num_ranks = 4
        iterations = 20
        trainer = DistributedTrainer(
            network, dataset,
            num_ranks=num_ranks, local_minibatch_size=8,
            optimizer="adam", larc=True,
            lr_schedule="poly2", total_iterations_hint=iterations,
            learning_rate=3e-3, end_learning_rate=1e-4,
            allreduce_strategy="fused_sparse",
            validation_fraction=0.15, seed=7,
        )
        print(f"\ntraining on {num_ranks} simulated ranks "
              f"(global minibatch {trainer.report.traces_per_iteration}, "
              f"{network.num_parameters():,} parameters) ...")
        report = trainer.train(iterations, validate_every=5)

        print(f"  train loss {report.train_losses[0]:.2f} -> {report.train_losses[-1]:.2f}")
        print(f"  validation loss {report.validation_losses[0]:.2f} -> {report.validation_losses[-1]:.2f}")
        print(f"  measured throughput {report.mean_throughput:.1f} traces/s "
              f"(best-balanced {report.best_throughput:.1f}, load imbalance {report.load_imbalance_percent:.1f}%)")
        print(f"  mean effective minibatch size {np.mean(report.effective_minibatch_sizes):.1f} "
              f"of {trainer.report.traces_per_iteration}")
        sync = report.communication[-1]
        print(f"  last allreduce: {sync.num_calls} collective calls, {sync.bytes / 1e6:.2f} MB")

    # ---- 4. projected scaling (Table 2 / Figure 6) -------------------------------------
    print("\nprojecting to the paper's platforms with the calibrated performance model:")
    single_socket = report.mean_throughput / 2  # 2 ranks per node in the paper's setup
    node_model = SingleNodeModel(reference_platform="HSW", measured_traces_per_s=single_socket)
    for code in ("IVB", "HSW", "SKL"):
        print(f"  {code}: {node_model.throughput(code, 1):.1f} traces/s per socket "
              f"({node_model.throughput(code, 2):.1f} per node)")
    for cluster in (CORI, EDISON):
        perf = ClusterPerformanceModel(cluster, single_node_model=node_model,
                                       local_minibatch_size=64, rng=RandomState(1))
        point = perf.weak_scaling([1024], iterations=10)[0]
        print(f"  {cluster.name} at 1,024 nodes: {point.average_traces_per_s:,.0f} traces/s average "
              f"(ideal {point.ideal_traces_per_s:,.0f}, efficiency {point.efficiency:.2f})")


if __name__ == "__main__":
    main()
