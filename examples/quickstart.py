"""Quickstart: write a probabilistic program, run forward, invert it with inference.

This mirrors the paper's core idea at its smallest possible scale: a
generative program (simulator) maps latent choices to an observation; the PPL
inverts it, giving the posterior over the latents given an observed output.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ppl, seed_all
from repro.distributions import Normal, Uniform


def particle_energy_model():
    """A two-latent toy 'simulator': an energy and a calibration factor produce a reading."""
    energy = ppl.sample(Uniform(0.0, 10.0), name="energy")
    calibration = ppl.sample(Normal(1.0, 0.05), name="calibration")
    reading = energy * calibration
    ppl.observe(Normal(reading, 0.5), name="reading")
    return {"energy": energy, "calibration": calibration, "reading": reading}


def main() -> None:
    seed_all(0)
    model = ppl.FunctionModel(particle_energy_model, name="quickstart")

    # ---- forward direction: sample from the prior --------------------------------
    trace = model.prior_trace()
    print("one prior execution:")
    print(f"  energy={trace['energy']:.2f}  calibration={trace['calibration']:.3f}  "
          f"simulated reading={trace.observation['reading']:.2f}")
    print(f"  trace has {trace.length} latent draws, log p(x,y) = {trace.log_joint:.2f}")

    # ---- inverse direction: condition on an observed reading ---------------------
    observed_reading = 6.2
    print(f"\nconditioning on an observed reading of {observed_reading} ...")

    is_posterior = model.posterior({"reading": observed_reading}, num_traces=5000,
                                   engine="importance_sampling")
    energy_is = is_posterior.extract("energy")
    print(f"  importance sampling : energy = {energy_is.mean:.2f} +/- {energy_is.stddev:.2f} "
          f"(ESS {is_posterior.effective_sample_size():.0f})")

    rmh_posterior = model.posterior({"reading": observed_reading}, num_traces=5000,
                                    engine="rmh", burn_in=500)
    energy_rmh = rmh_posterior.extract("energy")
    print(f"  RMH (MCMC)          : energy = {energy_rmh.mean:.2f} +/- {energy_rmh.stddev:.2f}")

    lo, hi = energy_rmh.quantile([0.05, 0.95])
    print(f"  90% credible interval for the energy: [{lo:.2f}, {hi:.2f}]")
    print("\nboth engines agree: the observed reading of "
          f"{observed_reading} implies an energy near {energy_rmh.mean:.1f}.")


if __name__ == "__main__":
    main()
