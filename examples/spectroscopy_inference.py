"""Second science domain (paper introduction): inverting a spectroscopy simulator.

"Using a spectroscopy simulator we can determine the elemental matter
composition and dispersions within the simulator explaining an observed
spectrum."  The forward model sums element emission-line templates weighted by
the (latent) composition, broadened by a (latent) dispersion, on top of a
(latent) background; inference inverts an observed spectrum into a posterior
over all three.

Run with::

    python examples/spectroscopy_inference.py
"""

import numpy as np

from repro import seed_all
from repro.common.rng import RandomState
from repro.ppl.inference import RandomWalkMetropolis
from repro.ppl.state import Controller
from repro.simulators import SpectroscopyModel


class FixedComposition(Controller):
    """Forces chosen latent values when generating the ground-truth spectrum."""

    def __init__(self, overrides):
        self.overrides = overrides

    def choose(self, address, instance, distribution, name, rng):
        value = self.overrides.get(name, distribution.sample(rng))
        return value, float(np.sum(distribution.log_prob(value)))


def main() -> None:
    seed_all(3)
    rng = RandomState(3)
    model = SpectroscopyModel()
    elements = model.config.elements

    # ---- generate a ground-truth spectrum: an iron-rich sample -------------------
    truth = {
        "abundance_Fe": 0.9, "abundance_Ni": 0.15, "abundance_Cr": 0.25, "abundance_Si": 0.1,
        "dispersion": 0.02, "background": 0.08,
    }
    truth_trace = model.get_trace(FixedComposition(truth), rng=rng)
    observed_spectrum = truth_trace.observation["spectrum"]
    true_fractions = truth_trace.result["fractions"]
    print("ground-truth composition:",
          "  ".join(f"{el}={true_fractions[el]:.2f}" for el in elements))
    print(f"ground-truth dispersion: {truth_trace.result['dispersion']:.3f}, "
          f"background: {truth_trace.result['background']:.3f}")
    print(f"observed spectrum: {len(observed_spectrum)} channels, "
          f"max intensity {observed_spectrum.max():.2f}")

    # ---- invert it with RMH --------------------------------------------------------
    print("\nrunning RMH inference on the observed spectrum ...")
    sampler = RandomWalkMetropolis(model, {"spectrum": observed_spectrum},
                                   kernel="random_walk", step_scale=0.15, burn_in=1000)
    posterior = sampler.run(4000, rng=rng)
    print(f"acceptance rate {sampler.acceptance_rate:.2f}")

    # Composition posterior: normalise the abundance latents trace by trace.
    def fraction_of(element):
        def extract(trace):
            raw = {el: trace[f"abundance_{el}"] for el in elements}
            total = sum(raw.values())
            return raw[element] / total
        return posterior.map_values(extract)

    print("\nposterior composition (mean +/- std)  vs  truth:")
    for element in elements:
        projected = fraction_of(element)
        print(f"  {element:2s}: {projected.mean:.2f} +/- {projected.stddev:.2f}   (truth {true_fractions[element]:.2f})")

    dispersion = posterior.extract("dispersion")
    background = posterior.extract("background")
    print(f"\nposterior dispersion: {dispersion.mean:.3f} +/- {dispersion.stddev:.3f} "
          f"(truth {truth_trace.result['dispersion']:.3f})")
    print(f"posterior background: {background.mean:.3f} +/- {background.stddev:.3f} "
          f"(truth {truth_trace.result['background']:.3f})")

    dominant = max(elements, key=lambda el: fraction_of(el).mean)
    print(f"\nthe posterior identifies {dominant} as the dominant element "
          f"(truth: Fe) — the simulator has been inverted.")


if __name__ == "__main__":
    main()
