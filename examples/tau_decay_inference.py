"""The paper's headline use case: inverting the tau-decay + detector pipeline.

A mini-Sherpa simulator generates a tau lepton, decays it through the decay
table, and deposits the visible products in a 3D voxel calorimeter.  Given one
observed calorimeter image we then ask: what tau momentum, decay channel and
final-state energies produced it?

Three engines are compared, as in Section 6.4 / Figure 8:

* prior importance sampling (the naive baseline),
* RMH — the MCMC reference posterior,
* inference compilation (IC) — a 3DCNN-LSTM proposal network trained once on
  prior simulations, then reused for fast amortized inference.

Run with::

    python examples/tau_decay_inference.py            # scaled-down defaults (~2 min)
    python examples/tau_decay_inference.py --quick    # smoke-test sizes
"""

import argparse
import time

import numpy as np

from repro import seed_all
from repro.common.config import Config
from repro.common.rng import RandomState
from repro.ppl.inference import RandomWalkMetropolis, run_importance_sampling
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.simulators import TauDecayModel, branching_ratios, channel_names, ground_truth_event


def summarize(label, posterior, ground_truth):
    px = posterior.extract("px")
    py = posterior.extract("py")
    channel_probs = posterior.extract("channel").categorical_probabilities()
    true_channel = int(ground_truth["channel"])
    print(f"  {label:22s} px={px.mean:+.2f}+/-{px.stddev:.2f}  py={py.mean:+.2f}+/-{py.stddev:.2f}  "
          f"P(true channel)={channel_probs.get(true_channel, 0.0):.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny sizes for a fast smoke run")
    parser.add_argument("--training-traces", type=int, default=None)
    args = parser.parse_args()

    seed_all(1)
    rng = RandomState(1)
    model = TauDecayModel()

    training_traces = args.training_traces or (400 if args.quick else 2400)
    rmh_samples = 500 if args.quick else 4000
    ic_samples = 50 if args.quick else 300

    # ---- a test observation with known ground truth ------------------------------
    ground_truth, observation = ground_truth_event(
        overrides={"px": 1.2, "py": -0.8, "pz": 45.5, "channel": 1}, rng=RandomState(99)
    )
    true_channel = int(ground_truth["channel"])
    print("ground truth event:")
    print(f"  px={ground_truth['px']:+.2f}  py={ground_truth['py']:+.2f}  pz={ground_truth['pz']:.2f}")
    print(f"  channel {true_channel} ({channel_names()[true_channel]}), "
          f"FSP energies {ground_truth['fsp_energy_1']:.1f}/{ground_truth['fsp_energy_2']:.1f} GeV, "
          f"MET {ground_truth['met']:.2f}")
    conditioned = {"detector": observation}

    # ---- baseline: prior importance sampling --------------------------------------
    print("\nrunning prior importance sampling (baseline) ...")
    prior_is = run_importance_sampling(model, conditioned, num_traces=ic_samples * 4, rng=rng)

    # ---- reference: RMH MCMC -------------------------------------------------------
    print(f"running RMH for {rmh_samples} samples (the reference posterior) ...")
    start = time.time()
    sampler = RandomWalkMetropolis(model, conditioned, burn_in=rmh_samples // 4)
    rmh_posterior = sampler.run(rmh_samples, rng=rng)
    rmh_time = time.time() - start
    print(f"  RMH took {rmh_time:.1f}s, acceptance rate {sampler.acceptance_rate:.2f}")

    # ---- amortized: inference compilation ------------------------------------------
    config = Config(
        observation_shape=model.observation_shape,
        lstm_hidden=32, observation_embedding_dim=16, address_embedding_dim=8,
        sample_embedding_dim=4, proposal_mixture_components=3,
    )
    engine = InferenceCompilation(config=config, observe_key="detector", rng=rng)
    print(f"\ntraining the IC proposal network on {training_traces} prior simulations ...")
    start = time.time()
    history = engine.train(model, num_traces=training_traces, minibatch_size=16,
                           learning_rate=3e-3, lr_schedule="poly2", end_learning_rate=1e-4)
    print(f"  training took {time.time() - start:.1f}s; loss {history.losses[0]:.2f} -> {history.losses[-1]:.2f}; "
          f"{engine.network.num_parameters():,} parameters across {engine.network.num_addresses} addresses")

    print(f"running amortized IC inference ({ic_samples} traces) ...")
    start = time.time()
    ic_posterior = engine.posterior(model, conditioned, num_traces=ic_samples, rng=rng)
    ic_time = time.time() - start
    print(f"  IC inference took {ic_time:.1f}s (amortized: reusable for any new observation)")

    # ---- the Figure 8 comparison ----------------------------------------------------
    print("\nposterior comparison (truth: px=%+.2f, py=%+.2f, channel=%d):" %
          (ground_truth["px"], ground_truth["py"], true_channel))
    summarize("prior IS", prior_is, ground_truth)
    summarize("RMH reference", rmh_posterior, ground_truth)
    summarize("IC (amortized)", ic_posterior, ground_truth)
    print(f"\nprior P(channel={true_channel}) = {branching_ratios()[true_channel]:.2f}")
    print("the RMH and IC posteriors should agree with each other and concentrate "
          "around the ground truth relative to the prior.")


if __name__ == "__main__":
    main()
