"""Posterior serving: concurrent clients querying one trained inference engine.

The paper's end state is interactive posterior inference: train the proposal
network once (offline, expensive), then answer posterior queries for live
observations cheaply and forever.  This example stands up the serving
subsystem around a trained engine and fires concurrent clients at it:

* client threads submit posterior requests for a handful of "detector events"
  (some repeated — those come back from the observation-keyed cache),
* the micro-batching scheduler coalesces the in-flight requests' trace jobs
  into shared lockstep cohorts, and
* the service reports QPS, latency percentiles, cohort occupancy and cache
  hit rate at the end.

Run with::

    python examples/posterior_server.py                     # thread backend
    python examples/posterior_server.py --backend process   # worker processes

The ``process`` backend executes cohort shards on persistent worker
processes (sidestepping the GIL for CPU-bound simulators); answers are
seed-identical to the thread backend either way.
"""

import argparse
import threading

import numpy as np

from repro import seed_all
from repro.common.config import Config
from repro.common.rng import RandomState
from repro.distributions import Normal, Uniform
from repro.ppl import FunctionModel, observe, sample
from repro.ppl.inference.inference_compilation import InferenceCompilation
from repro.serving import PosteriorService

CONFIG = Config(
    observation_shape=(10, 13, 13),
    lstm_hidden=96,
    lstm_stacks=1,
    observation_embedding_dim=48,
    address_embedding_dim=24,
    sample_embedding_dim=4,
    proposal_mixture_components=8,
)

_D, _H, _W = CONFIG.observation_shape
_ZZ = np.linspace(-1, 1, _D)[:, None, None]
_YY = np.linspace(-1, 1, _H)[None, :, None]
_XX = np.linspace(-1, 1, _W)[None, None, :]


def deposit(px, py, pz):
    """A deterministic 'calorimeter' response: a Gaussian blob on the voxel grid."""
    return pz * np.exp(-((_XX - px / 3.0) ** 2 + (_YY - py / 3.0) ** 2 + _ZZ**2))


def detector_model():
    px = sample(Uniform(-2.0, 2.0), name="px")
    py = sample(Normal(0.0, 1.0), name="py")
    pz = sample(Uniform(0.5, 2.0), name="pz")
    observe(Normal(deposit(px, py, pz), 0.5), name="detector")
    return px


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="where cohort shards execute (process = persistent worker processes)",
    )
    args = parser.parse_args()
    seed_all(0)
    model = FunctionModel(detector_model, name="detector")

    print("training the inference network (once, offline) ...")
    engine = InferenceCompilation(config=CONFIG, observe_key="detector", rng=RandomState(0))
    engine.train(model, num_traces=320, minibatch_size=16, learning_rate=3e-3)
    print(f"  final loss {engine.history.final_loss:.2f}, "
          f"{engine.network.num_parameters()} parameters\n")

    # Four "events" the clients will ask about; two are popular (repeated
    # queries -> cache hits after the first answer).
    events = {
        "event-A": {"detector": deposit(0.7, -0.4, 1.2)},
        "event-B": {"detector": deposit(-0.9, 0.3, 0.8)},
        "event-C": {"detector": deposit(0.2, 1.1, 1.5)},
        "event-D": {"detector": deposit(-1.2, -0.8, 1.0)},
    }
    queries = (["event-A", "event-B"] * 6 + list(events))  # popular + one-off

    service = PosteriorService(
        model,
        engine.network,
        observe_key="detector",
        max_batch=64,
        max_latency=0.01,
        num_workers=1 if args.backend == "thread" else 2,
        backend=args.backend,
        cache_capacity=64,
    )
    print(f"serving backend: {service.backend}")
    answers = {}
    answers_lock = threading.Lock()

    def client(client_id: int, event_names) -> None:
        for name in event_names:
            served = service.posterior(events[name], num_traces=16, timeout=120)
            marginal = served.posterior.extract("px")
            with answers_lock:
                answers[(client_id, name)] = (
                    marginal.mean, marginal.stddev, served.cached, served.latency
                )

    with service:
        print(f"serving {len(queries)} queries from 4 concurrent clients ...")
        threads = [
            threading.Thread(target=client, args=(i, queries[i::4])) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    print("\nper-event posterior over px (first answer per event):")
    reported = set()
    for (client_id, name), (mean, std, cached, latency) in sorted(answers.items()):
        if name in reported:
            continue
        reported.add(name)
        print(f"  {name}: px = {mean:+.3f} +/- {std:.3f}")

    print("\nserving metrics:")
    for key in ("completed", "qps", "traces_executed", "latency_p50_s", "latency_p99_s",
                "mean_cohort_occupancy", "mixed_cohort_fraction", "cache_hit_rate"):
        value = stats[key]
        print(f"  {key:>22}: {value:.3f}" if isinstance(value, float) else
              f"  {key:>22}: {value}")
    print(f"  {'cohorts':>22}: {stats['engine']['num_cohorts']}")
    print(f"  {'observation embeds':>22}: {stats['engine']['num_observation_embeddings']}")


if __name__ == "__main__":
    main()
