"""Controlling an existing simulator in a separate process over PPX.

This is the deployment that makes Etalumis novel: the simulator (Sherpa in the
paper, a Python process here) is *not* imported by the PPL.  It runs as its
own operating-system process, and every random-number draw and conditioning
statement is routed over the probabilistic execution protocol (PPX) through a
TCP socket.  The PPL records or guides the execution exactly as it does for
local models, so all inference engines work unchanged.

Run with::

    python examples/remote_simulator_ppx.py
"""

import numpy as np

from repro import seed_all
from repro.ppl.inference import RandomWalkMetropolis
from repro.simulators import start_remote_model


def main() -> None:
    seed_all(5)

    print("launching the tau-decay simulator as a separate process ...")
    remote, process = start_remote_model("tau_decay")
    print(f"  simulator process PID {process.pid}, connected over PPX/TCP")
    print(f"  handshake: system={remote.controller.simulator_name!r}" if remote.controller.simulator_name else "")

    try:
        # ---- record prior executions over the protocol ---------------------------
        print("\nrecording 20 prior executions over PPX ...")
        traces = remote.prior_traces(20)
        lengths = sorted({t.length for t in traces})
        addresses = sorted({a for t in traces for a in t.addresses})
        print(f"  trace lengths observed: {lengths}")
        print(f"  {len(addresses)} unique simulator addresses, e.g.:")
        for address in addresses[:3]:
            print(f"    {address}")
        print(f"  handshake reported simulator: {remote.controller.simulator_name} "
              f"(model {remote.controller.model_name})")

        # ---- condition the remote simulator on one of its own outputs ------------
        observation = np.asarray(traces[0].observation["detector"])
        truth_px = traces[0]["px"]
        print(f"\nconditioning the remote simulator on a detector image (truth px={truth_px:+.2f}) ...")
        sampler = RandomWalkMetropolis(remote, {"detector": observation}, burn_in=200)
        posterior = sampler.run(800)
        px = posterior.extract("px")
        print(f"  posterior px = {px.mean:+.2f} +/- {px.stddev:.2f} "
              f"({sampler.num_executions} remote simulator executions, "
              f"acceptance {sampler.acceptance_rate:.2f})")
        print("  every one of those executions ran in the simulator process and was "
              "guided message-by-message over PPX.")
    finally:
        print("\nshutting the simulator process down ...")
        remote.shutdown()
        process.wait(timeout=10)
        print(f"  simulator exited with code {process.returncode}")


if __name__ == "__main__":
    main()
